#include "analysis/report.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

namespace haccrg::analysis {

namespace {

const char* lint_kind_name(LintKind k) {
  switch (k) {
    case LintKind::kDivergentBarrier: return "lint:divergent-barrier";
    case LintKind::kAtomicOutsideCritical: return "lint:atomic-outside-critical";
    case LintKind::kDefiniteRace: return "lint:definite-race";
  }
  return "lint:?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void witness_json(std::ostringstream& out, const RaceWitness& w) {
  if (!w.found) {
    out << "null";
    return;
  }
  auto iters = [&](const std::vector<std::pair<u32, i64>>& its) {
    out << "[";
    for (size_t i = 0; i < its.size(); ++i) {
      if (i) out << ",";
      out << "[" << its[i].first << "," << its[i].second << "]";
    }
    out << "]";
  };
  out << "{\"tid1\":" << w.tid1 << ",\"cta1\":" << w.cta1 << ",\"tid2\":" << w.tid2
      << ",\"cta2\":" << w.cta2 << ",\"addr1\":" << w.addr1 << ",\"addr2\":" << w.addr2
      << ",\"granule\":" << w.granule << ",\"rdu_visible\":" << (w.rdu_visible ? "true" : "false")
      << ",\"iters1\":";
  iters(w.iters1);
  out << ",\"iters2\":";
  iters(w.iters2);
  out << "}";
}

const char* class_name(AccessClass c) {
  switch (c) {
    case AccessClass::kProvablySafe: return "safe";
    case AccessClass::kMayRace: return "may-race";
    case AccessClass::kDefiniteRace: return "definite-race";
  }
  return "?";
}

}  // namespace

ErrorReport build_error_report(const StaticRaceReport& report) {
  ErrorReport er;
  er.kernel = report.kernel;
  // Dedup key: (low pc, high pc, space, kind string).
  std::set<std::tuple<u32, i64, bool, std::string>> seen;
  auto add = [&](Issue&& issue) {
    const u32 lo = issue.other_pc >= 0 ? std::min(issue.pc, static_cast<u32>(issue.other_pc))
                                       : issue.pc;
    const i64 hi = issue.other_pc >= 0
                       ? static_cast<i64>(std::max(issue.pc, static_cast<u32>(issue.other_pc)))
                       : -1;
    if (!seen.insert({lo, hi, issue.shared_space, issue.kind}).second) return;
    er.issues.push_back(std::move(issue));
  };

  for (const StaticAccess& a : report.accesses) {
    if (a.cls == AccessClass::kProvablySafe) continue;
    Issue issue;
    issue.kind = class_name(a.cls);
    issue.pc = a.pc;
    issue.other_pc = a.cls == AccessClass::kMayRace ? a.conflict_pc : -1;
    issue.shared_space = a.shared_space;
    issue.message = a.reason;
    issue.witness = a.witness;
    add(std::move(issue));
  }
  for (const Lint& l : report.lints) {
    if (l.kind == LintKind::kDefiniteRace) continue;  // covered by the access issue
    Issue issue;
    issue.kind = lint_kind_name(l.kind);
    issue.pc = l.pc;
    issue.message = l.message;
    add(std::move(issue));
  }
  std::stable_sort(er.issues.begin(), er.issues.end(), [](const Issue& x, const Issue& y) {
    return std::tie(x.pc, x.kind) < std::tie(y.pc, y.kind);
  });
  return er;
}

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative '*'/'?' match with backtracking to the last star.
  size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

Status parse_suppressions(const std::string& text, std::vector<Suppression>& out) {
  std::vector<Suppression> parsed;
  std::istringstream in(text);
  std::string line;
  bool in_block = false;
  Suppression cur;
  bool have_name = false;
  u32 lineno = 0;
  auto trim = [](std::string s) {
    const char* ws = " \t\r";
    const size_t b = s.find_first_not_of(ws);
    if (b == std::string::npos) return std::string();
    const size_t e = s.find_last_not_of(ws);
    return s.substr(b, e - b + 1);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line == "{") {
      if (in_block)
        return Status::corrupt("suppressions line " + std::to_string(lineno) +
                               ": nested '{'");
      in_block = true;
      cur = Suppression{};
      have_name = false;
      continue;
    }
    if (line == "}") {
      if (!in_block)
        return Status::corrupt("suppressions line " + std::to_string(lineno) +
                               ": '}' outside a block");
      if (!have_name)
        return Status::corrupt("suppressions line " + std::to_string(lineno) +
                               ": block has no name");
      parsed.push_back(cur);
      in_block = false;
      continue;
    }
    if (!in_block)
      return Status::corrupt("suppressions line " + std::to_string(lineno) +
                             ": content outside '{...}' block");
    const size_t colon = line.find(':');
    const std::string key = colon == std::string::npos ? "" : trim(line.substr(0, colon));
    if (key == "kernel" || key == "kind" || key == "pc") {
      const std::string val = trim(line.substr(colon + 1));
      if (val.empty())
        return Status::corrupt("suppressions line " + std::to_string(lineno) + ": empty " +
                               key + " value");
      if (key == "kernel") {
        cur.kernel_glob = val;
      } else if (key == "kind") {
        cur.kind_glob = val;
      } else {
        if (val != "*" && val.find_first_not_of("0123456789") != std::string::npos)
          return Status::corrupt("suppressions line " + std::to_string(lineno) +
                                 ": pc must be '*' or a decimal pc, got '" + val + "'");
        cur.pc = val;
      }
    } else if (have_name) {
      return Status::corrupt("suppressions line " + std::to_string(lineno) +
                             ": unknown directive '" + line + "'");
    } else {
      cur.name = line;
      have_name = true;
    }
  }
  if (in_block) return Status::corrupt("suppressions: unterminated '{' block");
  out.insert(out.end(), parsed.begin(), parsed.end());
  return {};
}

Status load_suppressions(const std::string& path, std::vector<Suppression>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::not_found("cannot open suppressions file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_suppressions(buf.str(), out);
}

u32 apply_suppressions(ErrorReport& report, const std::vector<Suppression>& sups,
                       const std::string& kernel_name) {
  u32 newly = 0;
  for (Issue& issue : report.issues) {
    if (issue.suppressed) continue;
    for (const Suppression& s : sups) {
      if (!glob_match(s.kernel_glob, kernel_name)) continue;
      if (!glob_match(s.kind_glob, issue.kind)) continue;
      if (s.pc != "*") {
        const u32 pc = static_cast<u32>(std::stoul(s.pc));
        if (issue.pc != pc && issue.other_pc != static_cast<int>(pc)) continue;
      }
      issue.suppressed = true;
      issue.suppressed_by = s.name;
      ++newly;
      break;
    }
  }
  report.num_suppressed += newly;
  return newly;
}

std::string to_json(const StaticRaceReport& report, const ErrorReport& errors) {
  std::ostringstream out;
  const AnalyzeOptions& o = report.options;
  out << "{\"kernel\":\"" << json_escape(report.kernel) << "\",";
  out << "\"options\":{\"shared_granularity\":" << o.shared_granularity
      << ",\"global_granularity\":" << o.global_granularity
      << ",\"assume_noalias_params\":" << (o.assume_noalias_params ? "true" : "false")
      << ",\"assume_aligned_params\":" << (o.assume_aligned_params ? "true" : "false")
      << ",\"block_dim\":" << o.block_dim << ",\"grid_dim\":" << o.grid_dim
      << ",\"warp_size\":" << o.warp_size
      << ",\"loop_aware\":" << (o.loop_aware ? "true" : "false")
      << ",\"warp_synchronous\":" << (o.warp_synchronous ? "true" : "false") << "},";
  out << "\"summary\":{\"accesses\":" << report.accesses.size()
      << ",\"safe\":" << report.count(AccessClass::kProvablySafe)
      << ",\"may_race\":" << report.count(AccessClass::kMayRace)
      << ",\"definite_race\":" << report.count(AccessClass::kDefiniteRace)
      << ",\"barriers\":" << report.num_barriers
      << ",\"divergent_barriers\":" << report.num_divergent_barriers
      << ",\"lints\":" << report.lints.size() << ",\"issues\":" << errors.issues.size()
      << ",\"suppressed\":" << errors.num_suppressed << ",\"active\":" << errors.active()
      << "},";
  out << "\"accesses\":[";
  for (size_t i = 0; i < report.accesses.size(); ++i) {
    const StaticAccess& a = report.accesses[i];
    if (i) out << ",";
    out << "{\"pc\":" << a.pc << ",\"space\":\"" << (a.shared_space ? "shared" : "global")
        << "\",\"op\":\"" << (a.is_atomic ? "atomic" : (a.is_store ? "store" : "load"))
        << "\",\"width\":" << a.width << ",\"class\":\"" << class_name(a.cls) << "\",\"addr\":\""
        << json_escape(to_string(a.addr)) << "\",\"sym\":\"" << json_escape(to_string(a.sym))
        << "\",\"conflict_pc\":" << a.conflict_pc << ",\"reason\":\"" << json_escape(a.reason)
        << "\",\"witness\":";
    witness_json(out, a.witness);
    out << "}";
  }
  out << "],\"issues\":[";
  for (size_t i = 0; i < errors.issues.size(); ++i) {
    const Issue& issue = errors.issues[i];
    if (i) out << ",";
    out << "{\"kind\":\"" << json_escape(issue.kind) << "\",\"pc\":" << issue.pc
        << ",\"other_pc\":" << issue.other_pc << ",\"space\":\""
        << (issue.shared_space ? "shared" : "global") << "\",\"message\":\""
        << json_escape(issue.message) << "\",\"suppressed\":"
        << (issue.suppressed ? "true" : "false") << ",\"suppressed_by\":\""
        << json_escape(issue.suppressed_by) << "\",\"witness\":";
    witness_json(out, issue.witness);
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace haccrg::analysis
