// Structured loop-nest recognition over a sealed Program. The mini-PTX
// machine only forms loops through kLoopBegin/kLoopEnd scopes, so loops
// are contiguous, properly nested pc ranges; this pass recovers that
// nest plus the two syntactic facts the loop-aware dependence analysis
// needs:
//
//   1. Basic induction variables: registers whose only update inside the
//      loop is a single top-level `add r, r, #imm` (or `sub`), i.e. they
//      advance by a fixed step once per iteration. The canonical
//      KernelBuilder::for_range codegen produces exactly this shape.
//   2. The header guard: for_range emits `setp p, ltu, iv, bound;
//      breakifnot p` as the first two body instructions, which bounds
//      the iteration count when the bound and the IV's initial value are
//      known constants.
//
// Everything here is purely structural — no symbolic evaluation. The
// symbolic side (initial values, trip counts, per-iteration address
// forms) lives in dependence.cpp.
#pragma once

#include <vector>

#include "isa/program.hpp"

namespace haccrg::analysis {

/// A basic induction variable of one loop.
struct LoopIv {
  u8 reg = 0;      ///< register index
  i64 step = 0;    ///< signed per-iteration increment
  u32 add_pc = 0;  ///< pc of the single `add/sub r, r, #imm`
};

struct Loop {
  u32 begin_pc = 0;  ///< pc of kLoopBegin
  u32 end_pc = 0;    ///< pc of kLoopEnd
  int parent = -1;   ///< enclosing loop index, -1 for outermost
  u32 depth = 0;     ///< nesting depth (outermost = 0)
  std::vector<LoopIv> ivs;
  /// Registers written by any instruction in (begin_pc, end_pc),
  /// including nested loops. Sorted, unique.
  std::vector<u8> written;

  // Header guard `setp p, ltu, iv, bound; breakifnot p` at
  // begin_pc+1 / begin_pc+2, with `iv` one of this loop's IVs.
  bool has_guard = false;
  u8 guard_iv = 0;
  bool guard_bound_is_imm = false;
  u32 guard_bound_imm = 0;
  u8 guard_bound_reg = 0;

  bool writes(u8 reg) const {
    for (u8 w : written)
      if (w == reg) return true;
    return false;
  }
  const LoopIv* iv_of(u8 reg) const {
    for (const LoopIv& iv : ivs)
      if (iv.reg == reg) return &iv;
    return nullptr;
  }
  bool contains(u32 pc) const { return pc > begin_pc && pc < end_pc; }
};

/// The program's loop nest, in kLoopBegin order (so a parent always
/// precedes its children).
class LoopNest {
 public:
  explicit LoopNest(const isa::Program& program);

  const std::vector<Loop>& loops() const { return loops_; }
  u32 size() const { return static_cast<u32>(loops_.size()); }
  const Loop& loop(u32 idx) const { return loops_[idx]; }

  /// Index of the innermost loop whose body contains `pc`, or -1.
  int innermost_at(u32 pc) const { return pc < innermost_.size() ? innermost_[pc] : -1; }

  /// Does any instruction at Opcode level write `reg`? (Helper shared
  /// with the symbolic walk.)
  static bool writes_reg(const isa::Instr& ins);

 private:
  std::vector<Loop> loops_;
  std::vector<int> innermost_;  // per pc
};

}  // namespace haccrg::analysis
