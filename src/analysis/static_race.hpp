// Static race analysis over a sealed Program: classify every shared/
// global memory access as provably race-free, possibly racing, or
// definitely racing, before any dynamic detector runs.
//
// The pass composes three sub-analyses:
//   1. Cfg + dominators: barrier-interval partitioning. Two accesses
//      separated by a block-uniform kBar on every path cannot race, so
//      only pairs connected by a barrier-free path are compared.
//   2. AffineAnalysis: symbolic `base + c*tid` address forms. Two
//      tid-linear accesses whose granule ranges are disjoint for every
//      distinct thread pair are proven safe (e.g. out[tid]).
//   3. A divergence/lint layer: barriers under divergent predicates,
//      atomics outside critical sections, and uniform-address stores
//      that every thread of a block performs (definite races).
//
// Soundness contract: a kProvablySafe access never participates in a
// pair the dynamic detectors could flag at their shadow granularity, so
// skipping its instrumentation (or its RDU shadow check) cannot hide a
// race the un-pruned configuration would have reported. Conservative
// assumptions (documented in DESIGN.md): distinct kernel-parameter
// slots point to distinct allocations, and parameter pointers are
// granule-aligned; both are switchable in AnalyzeOptions.
#pragma once

#include <string>
#include <vector>

#include "analysis/affine.hpp"
#include "analysis/cfg.hpp"
#include "isa/program.hpp"

namespace haccrg::analysis {

enum class AccessClass : u8 {
  kProvablySafe,  ///< cannot pair with any conflicting access
  kMayRace,       ///< a conflicting pair exists or the address is unknown
  kDefiniteRace,  ///< all threads of a block store the same granule together
};

enum class LintKind : u8 {
  kDivergentBarrier,       ///< kBar under a non-uniform predicate
  kAtomicOutsideCritical,  ///< atomic with no enclosing lock markers
  kDefiniteRace,           ///< uniform-address multi-thread store
};

struct AnalyzeOptions {
  /// Shadow granularity (bytes) the consumer detects at. The software
  /// detectors use 4-byte words; the hardware shared RDU defaults to
  /// 16 B (HaccrgConfig::shared_granularity) — pruning is only sound
  /// when these match the detector being filtered.
  u32 shared_granularity = 4;
  u32 global_granularity = 4;
  /// Distinct kernel-parameter slots reference distinct allocations.
  bool assume_noalias_params = true;
  /// Parameter base pointers are aligned to the shadow granularity
  /// (device allocators align far coarser in practice).
  bool assume_aligned_params = true;
};

/// Classification record for one memory instruction.
struct StaticAccess {
  u32 pc = 0;
  AccessClass cls = AccessClass::kMayRace;
  bool shared_space = false;
  bool is_store = false;
  bool is_atomic = false;
  u32 width = 4;
  AffineVal addr;        ///< affine address form at the access
  int conflict_pc = -1;  ///< witness partner for kMayRace (or -1)
  std::string reason;    ///< human-readable justification
};

struct Lint {
  u32 pc = 0;
  LintKind kind = LintKind::kDivergentBarrier;
  std::string message;
};

struct StaticRaceReport {
  std::vector<AccessClass> classes;  ///< per pc; meaningful at memory pcs
  std::vector<StaticAccess> accesses;
  std::vector<Lint> lints;
  u32 num_barriers = 0;
  u32 num_divergent_barriers = 0;

  /// True when the memory instruction at `pc` was proven race-free
  /// (instrumentation/shadow checks for it can be skipped).
  bool is_safe(u32 pc) const {
    return pc < classes.size() && classes[pc] == AccessClass::kProvablySafe;
  }
  const StaticAccess* access_at(u32 pc) const;
  u32 count(AccessClass cls) const;

  /// One-line totals, e.g. "7 accesses: 4 safe, 3 may-race, 0 definite".
  std::string summary() const;
  /// Annotated disassembly: every memory access and barrier carries its
  /// classification, followed by the lint list.
  std::string annotate(const isa::Program& program) const;
};

/// Run the full pass. The program must be sealed and valid.
StaticRaceReport analyze(const isa::Program& program, const AnalyzeOptions& opts = {});

/// Render an AffineVal for reports/tests, e.g. "4*tid+16" or "param2+4*gtid".
std::string to_string(const AffineVal& v);

}  // namespace haccrg::analysis
