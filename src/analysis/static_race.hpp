// Static race analysis over a sealed Program: classify every shared/
// global memory access as provably race-free, possibly racing, or
// definitely racing, before any dynamic detector runs.
//
// The pass composes three sub-analyses:
//   1. Cfg + dominators: barrier-interval partitioning. Two accesses
//      separated by a block-uniform kBar on every path cannot race, so
//      only pairs connected by a barrier-free path are compared.
//   2. AffineAnalysis: symbolic `base + c*tid` address forms. Two
//      tid-linear accesses whose granule ranges are disjoint for every
//      distinct thread pair are proven safe (e.g. out[tid]).
//   3. A divergence/lint layer: barriers under divergent predicates,
//      atomics outside critical sections, and uniform-address stores
//      that every thread of a block performs (definite races).
//
// Soundness contract: a kProvablySafe access never participates in a
// pair the dynamic detectors could flag at their shadow granularity, so
// skipping its instrumentation (or its RDU shadow check) cannot hide a
// race the un-pruned configuration would have reported. Conservative
// assumptions (documented in DESIGN.md): distinct kernel-parameter
// slots point to distinct allocations, and parameter pointers are
// granule-aligned; both are switchable in AnalyzeOptions.
#pragma once

#include <string>
#include <vector>

#include "analysis/affine.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dependence.hpp"
#include "common/status.hpp"
#include "haccrg/options.hpp"
#include "isa/program.hpp"

namespace haccrg::analysis {

enum class AccessClass : u8 {
  kProvablySafe,  ///< cannot pair with any conflicting access
  kMayRace,       ///< a conflicting pair exists or the address is unknown
  kDefiniteRace,  ///< all threads of a block store the same granule together
};

enum class LintKind : u8 {
  kDivergentBarrier,       ///< kBar under a non-uniform predicate
  kAtomicOutsideCritical,  ///< atomic with no enclosing lock markers
  kDefiniteRace,           ///< uniform-address multi-thread store
};

struct AnalyzeOptions {
  /// Shadow granularity (bytes) the consumer detects at. The software
  /// detectors use 4-byte words; the hardware shared RDU defaults to
  /// 16 B (HaccrgConfig::shared_granularity) — pruning is only sound
  /// when these match the detector being filtered.
  u32 shared_granularity = 4;
  u32 global_granularity = 4;
  /// Distinct kernel-parameter slots reference distinct allocations.
  bool assume_noalias_params = true;
  /// Parameter base pointers are aligned to the shadow granularity
  /// (device allocators align far coarser in practice).
  bool assume_aligned_params = true;
  /// Launch geometry, when known. Bounding the thread/block variables
  /// lets the dependence tests refute conflicts that are launch-size
  /// dependent (e.g. strided loop inits that only collide for huge
  /// blocks). 0 = unknown (ranges stay unbounded — always sound).
  u32 block_dim = 0;
  u32 grid_dim = 0;
  u32 warp_size = 32;
  /// Loop-aware symbolic addresses + dependence solver (dependence.hpp).
  /// Off = the PR-1 straight-line pair test, kept as the bench baseline.
  bool loop_aware = true;
  /// Classify pairs the way the hardware RDUs order them: provably
  /// intra-warp shared pairs are warp-ordered and never reported, so
  /// they count as safe. ONLY sound when filtering the hardware
  /// detector with warp regrouping disabled; software detectors do
  /// report intra-warp pairs.
  bool warp_synchronous = false;
};

/// Classification record for one memory instruction.
struct StaticAccess {
  u32 pc = 0;
  AccessClass cls = AccessClass::kMayRace;
  bool shared_space = false;
  bool is_store = false;
  bool is_atomic = false;
  u32 width = 4;
  AffineVal addr;        ///< affine address form at the access
  SymAddr sym;           ///< loop-aware symbolic form (== addr when loops are off)
  int conflict_pc = -1;  ///< witness partner for kMayRace (or -1)
  std::string reason;    ///< human-readable justification
  /// Concrete racing candidate for kMayRace/kDefiniteRace (solver
  /// enumerated, replay-checkable). found=false when the solver budget
  /// ran out or the addresses aren't concretely realizable.
  RaceWitness witness;
};

struct Lint {
  u32 pc = 0;
  LintKind kind = LintKind::kDivergentBarrier;
  std::string message;
};

struct StaticRaceReport {
  std::string kernel;                ///< program name the report was built from
  AnalyzeOptions options;            ///< the options the pass ran with
  std::vector<AccessClass> classes;  ///< per pc; meaningful at memory pcs
  std::vector<StaticAccess> accesses;
  std::vector<Lint> lints;
  u32 num_barriers = 0;
  u32 num_divergent_barriers = 0;

  /// True when the memory instruction at `pc` was proven race-free
  /// (instrumentation/shadow checks for it can be skipped).
  bool is_safe(u32 pc) const {
    return pc < classes.size() && classes[pc] == AccessClass::kProvablySafe;
  }
  const StaticAccess* access_at(u32 pc) const;
  u32 count(AccessClass cls) const;

  /// One-line totals, e.g. "7 accesses: 4 safe, 3 may-race, 0 definite".
  std::string summary() const;
  /// Annotated disassembly: every memory access and barrier carries its
  /// classification, followed by the lint list.
  std::string annotate(const isa::Program& program) const;
};

/// Run the full pass. The program must be sealed and valid.
StaticRaceReport analyze(const isa::Program& program, const AnalyzeOptions& opts = {});

/// AnalyzeOptions matched to a detector configuration: granularities
/// copied from `cfg` so pruning is sound for that detector, geometry
/// filled in when the caller knows it. The safe way to build options for
/// a HaccrgConfig::static_filter report — hand-rolled options with the
/// wrong granularity silently prune accesses the detector would check.
AnalyzeOptions options_for(const rd::HaccrgConfig& cfg, u32 block_dim = 0, u32 grid_dim = 0);

/// Can a report computed with `opts` soundly filter a detector running
/// `cfg`? Rejects per-space granularity mismatches (for each enabled
/// space), warp-synchronous pruning under warp regrouping, and geometry
/// recorded in the report that contradicts the launch (`block_dim` /
/// `grid_dim`; pass 0 to skip the launch-geometry check).
Status filter_compatible(const AnalyzeOptions& opts, const rd::HaccrgConfig& cfg,
                         u32 block_dim = 0, u32 grid_dim = 0);

/// Render an AffineVal for reports/tests, e.g. "4*tid+16" or "param2+4*gtid".
std::string to_string(const AffineVal& v);

}  // namespace haccrg::analysis
