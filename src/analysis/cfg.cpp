#include "analysis/cfg.hpp"

#include <algorithm>

namespace haccrg::analysis {

using isa::Opcode;

void Cfg::instr_succs(const isa::Program& program, u32 pc, std::vector<u32>& out) {
  out.clear();
  const isa::Instr& ins = program.at(pc);
  switch (ins.op) {
    case Opcode::kExit:
      return;
    case Opcode::kJump:
      out.push_back(ins.imm);
      return;
    case Opcode::kBreakIf:
    case Opcode::kBreakIfNot:
      if (pc + 1 < program.size()) out.push_back(pc + 1);
      out.push_back(ins.imm);
      return;
    default:
      if (pc + 1 < program.size()) out.push_back(pc + 1);
      return;
  }
}

namespace {

/// Iterative bitset dominator solve over `succs`/`preds`. Returns, for
/// each node, the set of dominators as a flat bit matrix. `entry` seeds
/// the iteration; unreachable nodes keep the full set (standard
/// convention, harmless for our always-reachable structured programs).
std::vector<std::vector<u64>> solve_dominators(const std::vector<std::vector<u32>>& preds,
                                               u32 n, u32 entry) {
  const u32 words = (n + 63) / 64;
  std::vector<std::vector<u64>> dom(n, std::vector<u64>(words, ~u64{0}));
  std::vector<u64> entry_only(words, 0);
  entry_only[entry / 64] = u64{1} << (entry % 64);
  dom[entry] = entry_only;

  bool changed = true;
  std::vector<u64> tmp(words);
  while (changed) {
    changed = false;
    for (u32 b = 0; b < n; ++b) {
      if (b == entry) continue;
      std::fill(tmp.begin(), tmp.end(), ~u64{0});
      bool any_pred = false;
      for (u32 p : preds[b]) {
        any_pred = true;
        for (u32 w = 0; w < words; ++w) tmp[w] &= dom[p][w];
      }
      if (!any_pred) std::fill(tmp.begin(), tmp.end(), 0);
      tmp[b / 64] |= u64{1} << (b % 64);
      if (tmp != dom[b]) {
        dom[b] = tmp;
        changed = true;
      }
    }
  }
  return dom;
}

bool bit_test(const std::vector<u64>& set, u32 i) {
  return (set[i / 64] >> (i % 64)) & 1;
}

/// Immediate dominator: the unique strict dominator whose own dominator
/// set covers all other strict dominators.
std::vector<u32> immediate_from_sets(const std::vector<std::vector<u64>>& dom, u32 n, u32 entry) {
  std::vector<u32> idom(n, entry);
  for (u32 b = 0; b < n; ++b) {
    if (b == entry) {
      idom[b] = b;
      continue;
    }
    u32 best = entry;
    u32 best_count = 0;
    for (u32 d = 0; d < n; ++d) {
      if (d == b || !bit_test(dom[b], d)) continue;
      u32 count = 0;
      for (u32 e = 0; e < n; ++e)
        if (bit_test(dom[d], e)) ++count;
      if (count >= best_count) {
        best_count = count;
        best = d;
      }
    }
    idom[b] = best;
  }
  return idom;
}

}  // namespace

Cfg::Cfg(const isa::Program& program) : program_(&program) {
  const u32 n = program.size();
  std::vector<bool> leader(n, false);
  if (n > 0) leader[0] = true;
  std::vector<u32> succs;
  for (u32 pc = 0; pc < n; ++pc) {
    const isa::Instr& ins = program.at(pc);
    switch (ins.op) {
      case Opcode::kJump:
      case Opcode::kBreakIf:
      case Opcode::kBreakIfNot:
        if (ins.imm < n) leader[ins.imm] = true;
        if (pc + 1 < n) leader[pc + 1] = true;
        break;
      case Opcode::kExit:
        if (pc + 1 < n) leader[pc + 1] = true;
        break;
      default:
        break;
    }
  }

  block_of_.assign(n, 0);
  for (u32 pc = 0; pc < n; ++pc) {
    if (leader[pc]) {
      BasicBlock bb;
      bb.first = pc;
      blocks_.push_back(bb);
    }
    block_of_[pc] = static_cast<u32>(blocks_.size()) - 1;
    blocks_.back().last = pc;
  }

  for (u32 b = 0; b < blocks_.size(); ++b) {
    instr_succs(program, blocks_[b].last, succs);
    for (u32 s : succs) {
      const u32 t = block_of_[s];
      if (std::find(blocks_[b].succs.begin(), blocks_[b].succs.end(), t) ==
          blocks_[b].succs.end()) {
        blocks_[b].succs.push_back(t);
        blocks_[t].preds.push_back(b);
      }
    }
  }

  const u32 nb = num_blocks();
  {
    std::vector<std::vector<u32>> preds(nb);
    for (u32 b = 0; b < nb; ++b) preds[b] = blocks_[b].preds;
    idom_ = immediate_from_sets(solve_dominators(preds, nb, 0), nb, 0);
  }
  {
    // Post-dominators: reverse edges, with a virtual exit (index nb)
    // succeeding every kExit-terminated block.
    const u32 rn = nb + 1;
    std::vector<std::vector<u32>> rpreds(rn);  // preds in the reversed graph = succs forward
    for (u32 b = 0; b < nb; ++b) {
      for (u32 s : blocks_[b].succs) rpreds[b].push_back(s);
      if (program.at(blocks_[b].last).op == Opcode::kExit) rpreds[b].push_back(nb);
    }
    auto sets = solve_dominators(rpreds, rn, nb);
    ipdom_ = immediate_from_sets(sets, rn, nb);
    ipdom_.resize(nb);
    pdom_sets_ = std::move(sets);
  }
}

bool Cfg::dominates(u32 a, u32 b) const {
  // Walk the idom chain from b up to the entry.
  u32 cur = b;
  while (true) {
    if (cur == a) return true;
    const u32 up = idom_[cur];
    if (up == cur) return cur == a;
    cur = up;
  }
}

bool Cfg::postdominates(u32 a, u32 b) const {
  return bit_test(pdom_sets_[b], a);
}

}  // namespace haccrg::analysis
