#include "analysis/affine.hpp"

#include <deque>

namespace haccrg::analysis {

using isa::CmpOp;
using isa::Instr;
using isa::Opcode;
using isa::SpecialReg;

AffineVal AffineVal::operator+(const AffineVal& o) const {
  if (top || o.top) return make_top();
  AffineVal r;
  if (param_slot >= 0 && o.param_slot >= 0) return make_top();  // p+q not representable
  r.param_slot = param_slot >= 0 ? param_slot : o.param_slot;
  r.base = base + o.base;
  r.c_tid = c_tid + o.c_tid;
  r.c_cta = c_cta + o.c_cta;
  r.c_gtid = c_gtid + o.c_gtid;
  r.uniform_unknown = uniform_unknown || o.uniform_unknown;
  return r;
}

AffineVal AffineVal::operator-(const AffineVal& o) const {
  if (top || o.top) return make_top();
  AffineVal r;
  if (o.param_slot >= 0) {
    if (param_slot != o.param_slot) return make_top();  // -p not representable
    r.param_slot = -1;                                  // same symbolic base cancels
  } else {
    r.param_slot = param_slot;
  }
  r.base = base - o.base;
  r.c_tid = c_tid - o.c_tid;
  r.c_cta = c_cta - o.c_cta;
  r.c_gtid = c_gtid - o.c_gtid;
  r.uniform_unknown = uniform_unknown || o.uniform_unknown;
  return r;
}

AffineVal AffineVal::scaled(i64 k) const {
  if (top) return make_top();
  if (k == 0) return constant(0);
  AffineVal r = *this;
  if (param_slot >= 0 && k != 1) return make_top();  // k*p not representable
  r.base *= k;
  r.c_tid *= k;
  r.c_cta *= k;
  r.c_gtid *= k;
  return r;
}

AffineVal AffineVal::join(const AffineVal& a, const AffineVal& b) {
  if (a == b) return a;
  if (a.top || b.top) return make_top();
  if (a.c_tid == b.c_tid && a.c_cta == b.c_cta && a.c_gtid == b.c_gtid &&
      a.param_slot == b.param_slot) {
    AffineVal r = a;
    if (a.base != b.base) {
      r.base = 0;
      r.uniform_unknown = true;  // the delta is grid-invariant but unknown
    }
    r.uniform_unknown = r.uniform_unknown || b.uniform_unknown;
    return r;
  }
  if (a.grid_invariant() && b.grid_invariant()) return uniform();
  return make_top();
}

AffineState AffineState::join(const AffineState& a, const AffineState& b) {
  AffineState r;
  for (u32 i = 0; i < isa::kMaxRegs; ++i) r.regs[i] = AffineVal::join(a.regs[i], b.regs[i]);
  for (u32 i = 0; i < isa::kMaxPreds; ++i) r.preds[i] = PredFact::join(a.preds[i], b.preds[i]);
  return r;
}

namespace {

AffineVal operand_val(const Instr& ins, const AffineState& s) {
  return ins.src1_is_imm ? AffineVal::constant(static_cast<i64>(ins.imm)) : s.regs[ins.src1];
}

/// Exact u32 fold of the interpreter's integer ALU semantics.
u32 fold_int(Opcode op, u32 a, u32 b) {
  switch (op) {
    case Opcode::kAdd: return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kMul: return a * b;
    case Opcode::kMulHi: return static_cast<u32>((u64(a) * u64(b)) >> 32);
    case Opcode::kDiv: return b == 0 ? 0 : a / b;
    case Opcode::kRem: return b == 0 ? 0 : a % b;
    case Opcode::kMin: return a < b ? a : b;
    case Opcode::kMax: return a > b ? a : b;
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kNot: return ~a;
    case Opcode::kShl: return a << (b & 31);
    case Opcode::kShr: return a >> (b & 31);
    case Opcode::kSra: return static_cast<u32>(static_cast<i32>(a) >> (b & 31));
    default: return 0;
  }
}

bool foldable_int(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kMulHi:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kNot:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSra:
      return true;
    default:
      return false;
  }
}

}  // namespace

void AffineAnalysis::transfer(const Instr& ins, AffineState& s) {
  switch (ins.op) {
    case Opcode::kMov:
      s.regs[ins.dst] = ins.src1_is_imm ? AffineVal::constant(static_cast<i64>(ins.imm))
                                        : s.regs[ins.src0];
      return;
    case Opcode::kSpecial:
      switch (static_cast<SpecialReg>(ins.imm)) {
        case SpecialReg::kTid: {
          AffineVal v;
          v.c_tid = 1;
          s.regs[ins.dst] = v;
          return;
        }
        case SpecialReg::kCtaId: {
          AffineVal v;
          v.c_cta = 1;
          s.regs[ins.dst] = v;
          return;
        }
        case SpecialReg::kGTid: {
          AffineVal v;
          v.c_gtid = 1;
          s.regs[ins.dst] = v;
          return;
        }
        case SpecialReg::kNTid:
        case SpecialReg::kNCtaId:
          s.regs[ins.dst] = AffineVal::uniform();
          return;
        default:  // lane, warp id, SM id: thread-varying, untracked
          s.regs[ins.dst] = AffineVal::make_top();
          return;
      }
    case Opcode::kParam: {
      AffineVal v;
      v.param_slot = static_cast<int>(ins.imm);
      s.regs[ins.dst] = v;
      return;
    }
    case Opcode::kSetp: {
      const AffineVal a = s.regs[ins.src0];
      const AffineVal b = operand_val(ins, s);
      const AffineVal diff = a - b;
      PredFact fact;
      fact.uniform = !diff.top && diff.block_coeff() == 0;
      // `x == c` with a tid-linear difference and no loop-varying term
      // pins the predicate to (at most) one fixed thread per block.
      fact.unique_thread = ins.cmp() == CmpOp::kEq && !diff.top && !diff.uniform_unknown &&
                           diff.block_coeff() != 0;
      s.preds[ins.dst] = fact;
      return;
    }
    case Opcode::kSel: {
      const AffineVal a = s.regs[ins.src0];
      const AffineVal b = s.regs[ins.src1];
      if (s.preds[ins.aux].uniform) {
        s.regs[ins.dst] = AffineVal::join(a, b);
      } else {
        // Divergent select: lanes pick different sources.
        s.regs[ins.dst] = a == b ? a : AffineVal::make_top();
      }
      return;
    }
    case Opcode::kLdGlobal:
    case Opcode::kLdShared:
    case Opcode::kAtomGlobal:
    case Opcode::kAtomShared:
      s.regs[ins.dst] = AffineVal::make_top();
      return;
    case Opcode::kStGlobal:
    case Opcode::kStShared:
    case Opcode::kBar:
    case Opcode::kMemBar:
    case Opcode::kMemBarBlock:
    case Opcode::kLockAcqMark:
    case Opcode::kLockRelMark:
    case Opcode::kIf:
    case Opcode::kElse:
    case Opcode::kEndIf:
    case Opcode::kLoopBegin:
    case Opcode::kLoopEnd:
    case Opcode::kBreakIf:
    case Opcode::kBreakIfNot:
    case Opcode::kJump:
    case Opcode::kExit:
    case Opcode::kNop:
      return;  // no register effects
    default:
      break;
  }

  // Remaining ALU forms.
  const AffineVal a = s.regs[ins.src0];
  const AffineVal b = operand_val(ins, s);
  if (foldable_int(ins.op) && a.is_const() && b.is_const()) {
    s.regs[ins.dst] = AffineVal::constant(static_cast<i64>(
        fold_int(ins.op, static_cast<u32>(a.base), static_cast<u32>(b.base))));
    return;
  }
  switch (ins.op) {
    case Opcode::kAdd:
      s.regs[ins.dst] = a + b;
      return;
    case Opcode::kSub:
      s.regs[ins.dst] = a - b;
      return;
    case Opcode::kMul:
      if (b.is_const()) {
        s.regs[ins.dst] = a.scaled(b.base);
        return;
      }
      if (a.is_const()) {
        s.regs[ins.dst] = b.scaled(a.base);
        return;
      }
      break;
    case Opcode::kShl:
      if (b.is_const() && b.base >= 0 && b.base < 32) {
        s.regs[ins.dst] = a.scaled(i64{1} << b.base);
        return;
      }
      break;
    default:
      break;
  }
  s.regs[ins.dst] =
      a.grid_invariant() && b.grid_invariant() ? AffineVal::uniform() : AffineVal::make_top();
}

AffineAnalysis::AffineAnalysis(const isa::Program& program, const Cfg& cfg)
    : program_(&program), cfg_(&cfg) {
  const u32 nb = cfg.num_blocks();
  entry_.assign(nb, AffineState{});
  std::vector<bool> seen(nb, false);
  seen[0] = true;

  // Worklist fixpoint; the lattice has finite height (each register can
  // only climb const -> affine/uniform -> top), so this terminates.
  std::deque<u32> work;
  work.push_back(0);
  std::vector<bool> queued(nb, false);
  queued[0] = true;
  while (!work.empty()) {
    const u32 b = work.front();
    work.pop_front();
    queued[b] = false;
    AffineState s = entry_[b];
    for (u32 pc = cfg.blocks()[b].first; pc <= cfg.blocks()[b].last; ++pc) {
      transfer(program.at(pc), s);
    }
    for (u32 succ : cfg.blocks()[b].succs) {
      AffineState merged = seen[succ] ? AffineState::join(entry_[succ], s) : s;
      if (!seen[succ] || !(merged == entry_[succ])) {
        entry_[succ] = merged;
        seen[succ] = true;
        if (!queued[succ]) {
          queued[succ] = true;
          work.push_back(succ);
        }
      }
    }
  }

  // Replay each block once to record the state before every pc and the
  // address form of each memory access.
  at_.assign(program.size(), AffineState{});
  addresses_.assign(program.size(), AffineVal::make_top());
  for (u32 b = 0; b < nb; ++b) {
    AffineState s = entry_[b];
    for (u32 pc = cfg.blocks()[b].first; pc <= cfg.blocks()[b].last; ++pc) {
      at_[pc] = s;
      const Instr& ins = program.at(pc);
      if (isa::is_memory_op(ins.op)) {
        addresses_[pc] = s.regs[ins.src0] + AffineVal::constant(static_cast<i64>(ins.imm));
      }
      transfer(ins, s);
    }
  }
}

PredFact AffineAnalysis::pred_at(u32 pc, u32 pred_idx) const {
  return at_[pc].preds[pred_idx];
}

}  // namespace haccrg::analysis
