#include "analysis/dependence.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <numeric>
#include <sstream>

namespace haccrg::analysis {

using isa::Instr;
using isa::Opcode;
using isa::SpecialReg;

namespace {

i64 floor_div(i64 a, i64 b) {
  i64 q = a / b;
  i64 r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

i64 ceil_div_i(i64 a, i64 b) { return -floor_div(-a, b); }

i64 mod_floor(i64 a, i64 g) {
  i64 r = a % g;
  return r < 0 ? r + g : r;
}

/// Merge two sorted iter-term vectors (sign = +1/-1 applied to `b`).
std::vector<IterTerm> merge_iters(const std::vector<IterTerm>& a, const std::vector<IterTerm>& b,
                                  i64 sign) {
  std::vector<IterTerm> out;
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j == b.size() || (i < a.size() && a[i].loop < b[j].loop)) {
      out.push_back(a[i++]);
    } else if (i == a.size() || b[j].loop < a[i].loop) {
      IterTerm t = b[j++];
      t.coeff *= sign;
      if (t.coeff != 0) out.push_back(t);
      continue;
    } else {
      IterTerm t = a[i++];
      const IterTerm& u = b[j++];
      t.coeff += sign * u.coeff;
      if (t.trip != u.trip) t.trip = -1;  // disagreeing bounds: widen
      if (t.coeff != 0) out.push_back(t);
      continue;
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SymAddr
// ---------------------------------------------------------------------------

SymAddr SymAddr::from_affine(const AffineVal& v) {
  if (v.top) return make_top();
  SymAddr s;
  s.uniform_unknown = v.uniform_unknown;
  s.base = v.base;
  s.c_tid = v.c_tid;
  s.c_cta = v.c_cta;
  s.c_gtid = v.c_gtid;
  s.param_slot = v.param_slot;
  return s;
}

AffineVal SymAddr::to_affine() const {
  if (top || !iters.empty()) return AffineVal::make_top();
  AffineVal v;
  v.uniform_unknown = uniform_unknown;
  v.base = base;
  v.c_tid = c_tid;
  v.c_cta = c_cta;
  v.c_gtid = c_gtid;
  v.param_slot = param_slot;
  return v;
}

bool SymAddr::operator==(const SymAddr& o) const {
  if (top != o.top) return false;
  if (top) return true;
  return uniform_unknown == o.uniform_unknown && base == o.base && c_tid == o.c_tid &&
         c_cta == o.c_cta && c_gtid == o.c_gtid && param_slot == o.param_slot && iters == o.iters;
}

SymAddr SymAddr::operator+(const SymAddr& o) const {
  if (top || o.top) return make_top();
  if (param_slot >= 0 && o.param_slot >= 0) return make_top();
  SymAddr r;
  r.param_slot = param_slot >= 0 ? param_slot : o.param_slot;
  r.base = base + o.base;
  r.c_tid = c_tid + o.c_tid;
  r.c_cta = c_cta + o.c_cta;
  r.c_gtid = c_gtid + o.c_gtid;
  r.uniform_unknown = uniform_unknown || o.uniform_unknown;
  r.iters = merge_iters(iters, o.iters, +1);
  return r;
}

SymAddr SymAddr::operator-(const SymAddr& o) const {
  if (top || o.top) return make_top();
  SymAddr r;
  if (o.param_slot >= 0) {
    if (param_slot != o.param_slot) return make_top();
    r.param_slot = -1;  // same symbolic base cancels
  } else {
    r.param_slot = param_slot;
  }
  r.base = base - o.base;
  r.c_tid = c_tid - o.c_tid;
  r.c_cta = c_cta - o.c_cta;
  r.c_gtid = c_gtid - o.c_gtid;
  r.uniform_unknown = uniform_unknown || o.uniform_unknown;
  r.iters = merge_iters(iters, o.iters, -1);
  return r;
}

SymAddr SymAddr::scaled(i64 k) const {
  if (top) return make_top();
  if (k == 0) return constant(0);
  if (param_slot >= 0 && k != 1) return make_top();
  SymAddr r = *this;
  r.base *= k;
  r.c_tid *= k;
  r.c_cta *= k;
  r.c_gtid *= k;
  for (IterTerm& t : r.iters) t.coeff *= k;
  return r;
}

SymAddr SymAddr::join(const SymAddr& a, const SymAddr& b) {
  if (a == b) return a;
  if (a.top || b.top) return make_top();
  // Iteration terms are thread-varying in general (two threads sit at
  // different iterations), so a structural mismatch cannot fall back to
  // "uniform": it must widen all the way.
  bool iters_match = a.iters.size() == b.iters.size();
  for (size_t i = 0; iters_match && i < a.iters.size(); ++i)
    iters_match = a.iters[i].loop == b.iters[i].loop && a.iters[i].coeff == b.iters[i].coeff;
  if (!iters_match) return make_top();

  if (a.c_tid == b.c_tid && a.c_cta == b.c_cta && a.c_gtid == b.c_gtid &&
      a.param_slot == b.param_slot) {
    SymAddr r = a;
    for (size_t i = 0; i < r.iters.size(); ++i)
      if (r.iters[i].trip != b.iters[i].trip) r.iters[i].trip = -1;
    if (a.base != b.base) {
      r.base = 0;
      r.uniform_unknown = true;
    }
    r.uniform_unknown = r.uniform_unknown || b.uniform_unknown;
    return r;
  }
  if (a.grid_invariant() && b.grid_invariant()) return uniform();
  return make_top();
}

std::string to_string(const SymAddr& v) {
  if (v.top) return "top";
  std::ostringstream out;
  bool first = true;
  auto term = [&](i64 c, const std::string& name) {
    if (c == 0) return;
    if (!first) out << (c > 0 ? "+" : "");
    if (c == 1)
      out << name;
    else if (c == -1)
      out << "-" << name;
    else
      out << c << "*" << name;
    first = false;
  };
  if (v.param_slot >= 0) {
    out << "param" << v.param_slot;
    first = false;
  }
  term(v.c_tid, "tid");
  term(v.c_cta, "ctaid");
  term(v.c_gtid, "gtid");
  for (const IterTerm& t : v.iters) term(t.coeff, "iter@" + std::to_string(t.begin_pc));
  if (v.uniform_unknown) {
    out << (first ? "U" : "+U");
    first = false;
  }
  if (v.base != 0 || first) {
    if (!first && v.base > 0) out << "+";
    out << v.base;
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// SymbolicAddresses: the structural walk
// ---------------------------------------------------------------------------

namespace {

/// Exact u32 fold of the interpreter's integer ALU semantics (mirrors
/// affine.cpp so the walk is never weaker on constant code).
u32 fold_int(Opcode op, u32 a, u32 b) {
  switch (op) {
    case Opcode::kAdd: return a + b;
    case Opcode::kSub: return a - b;
    case Opcode::kMul: return a * b;
    case Opcode::kMulHi: return static_cast<u32>((u64(a) * u64(b)) >> 32);
    case Opcode::kDiv: return b == 0 ? 0 : a / b;
    case Opcode::kRem: return b == 0 ? 0 : a % b;
    case Opcode::kMin: return a < b ? a : b;
    case Opcode::kMax: return a > b ? a : b;
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kNot: return ~a;
    case Opcode::kShl: return a << (b & 31);
    case Opcode::kShr: return a >> (b & 31);
    case Opcode::kSra: return static_cast<u32>(static_cast<i32>(a) >> (b & 31));
    default: return 0;
  }
}

bool foldable_int(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kMulHi:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kNot:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kSra:
      return true;
    default:
      return false;
  }
}

using SymRegs = std::array<SymAddr, isa::kMaxRegs>;

SymAddr sym_operand(const Instr& ins, const SymRegs& regs) {
  return ins.src1_is_imm ? SymAddr::constant(static_cast<i64>(ins.imm)) : regs[ins.src1];
}

/// One instruction's transfer on the symbolic registers. Mirrors
/// AffineAnalysis::transfer; predicate facts come from the affine
/// fixpoint (they are loop-independent).
void sym_transfer(const Instr& ins, SymRegs& regs, const AffineAnalysis& affine, u32 pc) {
  switch (ins.op) {
    case Opcode::kMov:
      regs[ins.dst] = ins.src1_is_imm ? SymAddr::constant(static_cast<i64>(ins.imm))
                                      : regs[ins.src0];
      return;
    case Opcode::kSpecial:
      switch (static_cast<SpecialReg>(ins.imm)) {
        case SpecialReg::kTid: {
          SymAddr v;
          v.c_tid = 1;
          regs[ins.dst] = v;
          return;
        }
        case SpecialReg::kCtaId: {
          SymAddr v;
          v.c_cta = 1;
          regs[ins.dst] = v;
          return;
        }
        case SpecialReg::kGTid: {
          SymAddr v;
          v.c_gtid = 1;
          regs[ins.dst] = v;
          return;
        }
        case SpecialReg::kNTid:
        case SpecialReg::kNCtaId:
          regs[ins.dst] = SymAddr::uniform();
          return;
        default:
          regs[ins.dst] = SymAddr::make_top();
          return;
      }
    case Opcode::kParam: {
      SymAddr v;
      v.param_slot = static_cast<int>(ins.imm);
      regs[ins.dst] = v;
      return;
    }
    case Opcode::kSetp:
      return;  // predicates tracked by the affine fixpoint
    case Opcode::kSel: {
      const SymAddr a = regs[ins.src0];
      const SymAddr b = regs[ins.src1];
      if (affine.pred_at(pc, ins.aux).uniform) {
        regs[ins.dst] = SymAddr::join(a, b);
      } else {
        regs[ins.dst] = a == b ? a : SymAddr::make_top();
      }
      return;
    }
    case Opcode::kLdGlobal:
    case Opcode::kLdShared:
    case Opcode::kAtomGlobal:
    case Opcode::kAtomShared:
      regs[ins.dst] = SymAddr::make_top();
      return;
    case Opcode::kStGlobal:
    case Opcode::kStShared:
    case Opcode::kBar:
    case Opcode::kMemBar:
    case Opcode::kMemBarBlock:
    case Opcode::kLockAcqMark:
    case Opcode::kLockRelMark:
    case Opcode::kIf:
    case Opcode::kElse:
    case Opcode::kEndIf:
    case Opcode::kLoopBegin:
    case Opcode::kLoopEnd:
    case Opcode::kBreakIf:
    case Opcode::kBreakIfNot:
    case Opcode::kJump:
    case Opcode::kExit:
    case Opcode::kNop:
      return;
    default:
      break;
  }

  const SymAddr a = regs[ins.src0];
  const SymAddr b = sym_operand(ins, regs);
  if (foldable_int(ins.op) && a.is_const() && b.is_const()) {
    regs[ins.dst] = SymAddr::constant(static_cast<i64>(
        fold_int(ins.op, static_cast<u32>(a.base), static_cast<u32>(b.base))));
    return;
  }
  switch (ins.op) {
    case Opcode::kAdd:
      regs[ins.dst] = a + b;
      return;
    case Opcode::kSub:
      regs[ins.dst] = a - b;
      return;
    case Opcode::kMul:
      if (b.is_const()) {
        regs[ins.dst] = a.scaled(b.base);
        return;
      }
      if (a.is_const()) {
        regs[ins.dst] = b.scaled(a.base);
        return;
      }
      break;
    case Opcode::kShl:
      if (b.is_const() && b.base >= 0 && b.base < 32) {
        regs[ins.dst] = a.scaled(i64{1} << b.base);
        return;
      }
      break;
    default:
      break;
  }
  regs[ins.dst] =
      a.grid_invariant() && b.grid_invariant() ? SymAddr::uniform() : SymAddr::make_top();
}

}  // namespace

SymbolicAddresses::SymbolicAddresses(const isa::Program& program, const LoopNest& nest,
                                     const AffineAnalysis& affine) {
  const u32 n = program.size();
  addresses_.assign(n, SymAddr::make_top());
  if (n == 0) return;

  std::vector<int> loop_at(n, -1);
  for (u32 i = 0; i < nest.size(); ++i)
    if (nest.loop(i).begin_pc < n) loop_at[nest.loop(i).begin_pc] = static_cast<int>(i);

  SymRegs regs{};  // all-zero constants, matching AffineState's init
  struct IfFrame {
    SymRegs pre;
    SymRegs then_exit;
    bool has_else = false;
  };
  std::vector<IfFrame> ifs;
  std::vector<u32> loop_stack;

  // Sound widening value for a register the loop mutates beyond what we
  // track: the plain affine fixpoint just before `pc`.
  auto havoc = [&](u8 reg, u32 pc) {
    regs[reg] = SymAddr::from_affine(affine.state_at(pc).regs[reg]);
  };

  for (u32 pc = 0; pc < n; ++pc) {
    const Instr& ins = program.at(pc);
    switch (ins.op) {
      case Opcode::kIf: {
        IfFrame f;
        f.pre = regs;
        ifs.push_back(std::move(f));
        continue;
      }
      case Opcode::kElse:
        if (!ifs.empty()) {
          ifs.back().then_exit = regs;
          ifs.back().has_else = true;
          regs = ifs.back().pre;
        }
        continue;
      case Opcode::kEndIf:
        if (!ifs.empty()) {
          const IfFrame& f = ifs.back();
          const SymRegs& other = f.has_else ? f.then_exit : f.pre;
          for (u32 r = 0; r < isa::kMaxRegs; ++r)
            regs[r] = SymAddr::join(regs[r], other[r]);
          ifs.pop_back();
        }
        continue;
      case Opcode::kLoopBegin: {
        const int li = loop_at[pc];
        if (li >= 0 && nest.loop(li).end_pc > pc) {
          const Loop& l = nest.loop(li);
          const u32 head = pc + 1 < n ? pc + 1 : pc;
          // Trip count from the for_range header guard, when the IV's
          // initial value and the bound are known small constants.
          i64 trip = -1;
          if (l.has_guard) {
            const LoopIv* giv = l.iv_of(l.guard_iv);
            const SymAddr& v0 = regs[l.guard_iv];
            i64 bound = -1;
            bool bound_known = false;
            if (l.guard_bound_is_imm) {
              bound = static_cast<i64>(l.guard_bound_imm);
              bound_known = true;
            } else if (regs[l.guard_bound_reg].is_const()) {
              bound = regs[l.guard_bound_reg].base;
              bound_known = true;
            }
            // kLtU compares unsigned; stay where unsigned == signed.
            if (giv != nullptr && giv->step > 0 && bound_known && v0.is_const() &&
                v0.base >= 0 && v0.base < (i64{1} << 31) && bound >= 0 &&
                bound < (i64{1} << 31)) {
              trip = v0.base >= bound ? 0 : ceil_div_i(bound - v0.base, giv->step);
            }
          }
          // IVs advance from their entry value; everything else the loop
          // writes widens to the affine fixpoint at the loop header
          // (which joins the back edge).
          for (u8 w : l.written)
            if (l.iv_of(w) == nullptr) havoc(w, head);
          for (const LoopIv& iv : l.ivs) {
            SymAddr v = regs[iv.reg];
            if (!v.top) {
              IterTerm t;
              t.loop = static_cast<u32>(li);
              t.begin_pc = l.begin_pc;
              t.coeff = iv.step;
              t.trip = trip;
              v.iters = merge_iters(v.iters, {t}, +1);
            }
            regs[iv.reg] = v;
          }
          loop_stack.push_back(static_cast<u32>(li));
        }
        continue;
      }
      case Opcode::kLoopEnd:
        if (!loop_stack.empty()) {
          const Loop& l = nest.loop(loop_stack.back());
          loop_stack.pop_back();
          // After the loop every written register (IVs included) holds
          // the affine fixpoint at the kLoopEnd join of the break exits.
          for (u8 w : l.written) havoc(w, pc);
        }
        continue;
      default:
        break;
    }
    if (isa::is_memory_op(ins.op))
      addresses_[pc] = regs[ins.src0] + SymAddr::constant(static_cast<i64>(ins.imm));
    sym_transfer(ins, regs, affine, pc);
  }
}

// ---------------------------------------------------------------------------
// RaceWitness
// ---------------------------------------------------------------------------

std::string RaceWitness::describe() const {
  if (!found) return "(no witness)";
  std::ostringstream out;
  auto side = [&](u32 tid, u32 cta, u32 p, const std::vector<std::pair<u32, i64>>& its, u64 addr) {
    out << "t" << tid << "@cta" << cta << " pc " << p;
    for (const auto& [loop_pc, it] : its) out << " iter@" << loop_pc << "=" << it;
    out << " addr 0x" << std::hex << addr << std::dec;
  };
  side(tid1, cta1, pc, iters1, addr1);
  out << " x ";
  side(tid2, cta2, other_pc, iters2, addr2);
  out << " granule 0x" << std::hex << granule << std::dec;
  if (!rdu_visible) out << " (intra-warp)";
  return out.str();
}

// ---------------------------------------------------------------------------
// The integer-linear solver
// ---------------------------------------------------------------------------

namespace {

enum VarTag : u8 {
  kTagDt,    // thread delta t1 - t2 (or gtid delta in gtid mode)
  kTagT2,    // second thread id (or gtid)
  kTagDc,    // block delta cta1 - cta2 (global pairs)
  kTagC2,    // second block id; for shared pairs: the common block id
  kTagIterA, // iteration of A's term #aux
  kTagIterB, // iteration of B's term #aux
};

struct Var {
  i64 coeff = 0;
  i64 lo = 0, hi = 0;
  bool has_lo = false, has_hi = false;
  u8 tag = kTagDt;
  u32 aux = 0;
};

Var bounded(i64 coeff, i64 lo, i64 hi, u8 tag, u32 aux = 0) {
  return {coeff, lo, hi, true, true, tag, aux};
}
Var lower(i64 coeff, i64 lo, u8 tag, u32 aux = 0) { return {coeff, lo, 0, true, false, tag, aux}; }
Var upper(i64 coeff, i64 hi, u8 tag, u32 aux = 0) { return {coeff, 0, hi, false, true, tag, aux}; }
Var free_var(i64 coeff, u8 tag) { return {coeff, 0, 0, false, false, tag, 0}; }

/// One feasibility case: does d0 + sum coeff_i * x_i land in
/// [win_lo, win_hi] for some x in the boxes?
struct System {
  i64 base = 0;
  std::vector<Var> vars;
  i64 win_lo = 0, win_hi = 0;
};

/// Sound infeasibility test: interval (Banerjee) bounds + a GCD check.
/// `true` means "might be solvable" — pruning keys off `false` only.
bool feasible(const System& s) {
  if (s.win_lo > s.win_hi) return false;
  for (const Var& v : s.vars)
    if (v.has_lo && v.has_hi && v.lo > v.hi) return false;  // empty box
  i64 lo = s.base, hi = s.base;
  bool lo_inf = false, hi_inf = false;
  i64 g = 0;
  for (const Var& v : s.vars) {
    if (v.coeff == 0) continue;
    g = std::gcd(g, v.coeff < 0 ? -v.coeff : v.coeff);
    i64 cmin = 0, cmax = 0;
    bool cmin_inf, cmax_inf;
    if (v.coeff > 0) {
      cmin_inf = !v.has_lo;
      cmax_inf = !v.has_hi;
      if (!cmin_inf) cmin = v.coeff * v.lo;
      if (!cmax_inf) cmax = v.coeff * v.hi;
    } else {
      cmin_inf = !v.has_hi;
      cmax_inf = !v.has_lo;
      if (!cmin_inf) cmin = v.coeff * v.hi;
      if (!cmax_inf) cmax = v.coeff * v.lo;
    }
    lo_inf = lo_inf || cmin_inf;
    hi_inf = hi_inf || cmax_inf;
    if (!lo_inf) lo += cmin;
    if (!hi_inf) hi += cmax;
  }
  if (!hi_inf && hi < s.win_lo) return false;
  if (!lo_inf && lo > s.win_hi) return false;
  if (g == 0) return s.base >= s.win_lo && s.base <= s.win_hi;
  if (g > 1 && floor_div(s.win_hi - s.base, g) < ceil_div_i(s.win_lo - s.base, g)) return false;
  return true;
}

constexpr i64 kEnumClamp = 4096;    // stand-in bound for unbounded vars
constexpr u32 kMaxPerVar = 192;     // candidate values tried per variable
constexpr u32 kEnumBudget = 1u << 17;

/// Bounded branch-and-bound enumeration over a System. Calls `accept`
/// with a full assignment whose sum lands in the window; stops at the
/// first accepted one. Near-zero values are tried first so witnesses
/// come out small.
class Enumerator {
 public:
  explicit Enumerator(const System& s) : sys_(s) {
    const size_t n = s.vars.size();
    sufmin_.assign(n + 1, 0);
    sufmax_.assign(n + 1, 0);
    sufmin_inf_.assign(n + 1, 0);
    sufmax_inf_.assign(n + 1, 0);
    for (size_t i = n; i-- > 0;) {
      const Var& v = s.vars[i];
      i64 cmin = 0, cmax = 0;
      bool cmin_inf = false, cmax_inf = false;
      if (v.coeff > 0) {
        cmin_inf = !v.has_lo;
        cmax_inf = !v.has_hi;
        if (!cmin_inf) cmin = v.coeff * v.lo;
        if (!cmax_inf) cmax = v.coeff * v.hi;
      } else if (v.coeff < 0) {
        cmin_inf = !v.has_hi;
        cmax_inf = !v.has_lo;
        if (!cmin_inf) cmin = v.coeff * v.hi;
        if (!cmax_inf) cmax = v.coeff * v.lo;
      }
      sufmin_inf_[i] = sufmin_inf_[i + 1] || cmin_inf;
      sufmax_inf_[i] = sufmax_inf_[i + 1] || cmax_inf;
      sufmin_[i] = sufmin_inf_[i] ? 0 : sufmin_[i + 1] + cmin;
      sufmax_[i] = sufmax_inf_[i] ? 0 : sufmax_[i + 1] + cmax;
    }
  }

  bool run(const std::function<bool(const std::vector<i64>&)>& accept) {
    vals_.assign(sys_.vars.size(), 0);
    budget_ = kEnumBudget;
    return rec(0, sys_.base, accept);
  }

 private:
  bool rec(size_t i, i64 acc, const std::function<bool(const std::vector<i64>&)>& accept) {
    if (budget_ == 0) return false;
    --budget_;
    if (i == sys_.vars.size())
      return acc >= sys_.win_lo && acc <= sys_.win_hi && accept(vals_);
    const Var& v = sys_.vars[i];
    if (v.coeff == 0) {
      // Free variable (placement only): one representative; accept()
      // re-places it if needed.
      if (v.has_lo && v.has_hi && v.lo > v.hi) return false;
      i64 x0 = 0;
      if (v.has_lo && x0 < v.lo) x0 = v.lo;
      if (v.has_hi && x0 > v.hi) x0 = v.hi;
      vals_[i] = x0;
      return rec(i + 1, acc, accept);
    }

    // Candidate range for x: need coeff*x in [nlo, nhi] given the
    // best/worst the remaining variables can contribute.
    i64 xlo = 0, xhi = 0;
    bool xlo_inf = true, xhi_inf = true;
    if (v.coeff != 0) {
      const bool nlo_inf = sufmax_inf_[i + 1] != 0;
      const bool nhi_inf = sufmin_inf_[i + 1] != 0;
      const i64 nlo = sys_.win_lo - acc - sufmax_[i + 1];
      const i64 nhi = sys_.win_hi - acc - sufmin_[i + 1];
      if (v.coeff > 0) {
        if (!nlo_inf) { xlo = ceil_div_i(nlo, v.coeff); xlo_inf = false; }
        if (!nhi_inf) { xhi = floor_div(nhi, v.coeff); xhi_inf = false; }
      } else {
        if (!nlo_inf) { xhi = floor_div(nlo, v.coeff); xhi_inf = false; }
        if (!nhi_inf) { xlo = ceil_div_i(nhi, v.coeff); xlo_inf = false; }
      }
    }
    if (v.has_lo && (xlo_inf || v.lo > xlo)) { xlo = v.lo; xlo_inf = false; }
    if (v.has_hi && (xhi_inf || v.hi < xhi)) { xhi = v.hi; xhi_inf = false; }
    if (xlo_inf) xlo = -kEnumClamp;
    if (xhi_inf) xhi = kEnumClamp;
    if (xlo > xhi) return false;

    // Near-zero-first candidate order.
    std::vector<i64> cands;
    cands.reserve(kMaxPerVar);
    if (xlo >= 0) {
      for (i64 x = xlo; x <= xhi && cands.size() < kMaxPerVar; ++x) cands.push_back(x);
    } else if (xhi <= 0) {
      for (i64 x = xhi; x >= xlo && cands.size() < kMaxPerVar; --x) cands.push_back(x);
    } else {
      cands.push_back(0);
      for (i64 d = 1; cands.size() < kMaxPerVar && (d <= xhi || -d >= xlo); ++d) {
        if (d <= xhi) cands.push_back(d);
        if (cands.size() < kMaxPerVar && -d >= xlo) cands.push_back(-d);
      }
    }
    for (i64 x : cands) {
      vals_[i] = x;
      if (rec(i + 1, acc + v.coeff * x, accept)) return true;
      if (budget_ == 0) return false;
    }
    return false;
  }

  const System& sys_;
  std::vector<i64> sufmin_, sufmax_;
  std::vector<u8> sufmin_inf_, sufmax_inf_;
  std::vector<i64> vals_;
  u32 budget_ = 0;
};

/// Every coefficient that multiplies a (thread/block/iteration) variable
/// on this side vanishes modulo g, so the side's absolute granule
/// residue is its base residue.
bool side_residue_known(const SymAddr& s, i64 g, bool aligned_params) {
  if (s.uniform_unknown) return false;
  if (s.param_slot >= 0 && !aligned_params) return false;
  if (mod_floor(s.c_tid, g) != 0 || mod_floor(s.c_cta, g) != 0 || mod_floor(s.c_gtid, g) != 0)
    return false;
  for (const IterTerm& t : s.iters)
    if (mod_floor(t.coeff, g) != 0) return false;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// test_pair
// ---------------------------------------------------------------------------

PairVerdict test_pair(const DepAccess& A, const DepAccess& B, bool self, bool shares_unique,
                      bool shared_space, const DependenceOptions& opts) {
  PairVerdict out;  // conflict = true until proven otherwise

  SymAddr a = A.sym;
  SymAddr b = B.sym;
  if (a.top || b.top) return out;

  // A loop whose guard proves zero iterations never runs its body.
  for (const IterTerm& t : a.iters)
    if (t.trip == 0) { out.conflict = false; return out; }
  for (const IterTerm& t : b.iters)
    if (t.trip == 0) { out.conflict = false; return out; }

  if (a.param_slot != b.param_slot) {
    if (a.param_slot >= 0 && b.param_slot >= 0) out.conflict = !opts.assume_noalias_params;
    return out;  // param vs absolute: incomparable, conservative
  }

  // Unknown grid-invariant terms can differ between two dynamic
  // executions — except for a non-repeatable access every thread runs
  // once along the same path, where both sides carry the *same* unknown
  // and it cancels in the delta. Otherwise the conflict answer is forced
  // and the solver only hunts for a witness (with U instantiated to 0).
  bool exact_ok = true;
  bool force_conflict = false;
  if (a.uniform_unknown || b.uniform_unknown) {
    if (!(self && !A.repeatable && A.exec_uniform)) force_conflict = true;
    exact_ok = false;
  }

  if (shared_space && shares_unique) {
    // One fixed thread per block executes both sides; a thread cannot
    // race with itself and shared memory never crosses blocks.
    out.conflict = force_conflict;
    return out;
  }

  const i64 g = opts.granularity;
  const u32 bdim = opts.block_dim;
  const u32 gdim = opts.grid_dim;
  const bool b_known = bdim > 0;
  const bool g_known = gdim > 0;

  // Global accesses indexed purely by gtid keep the single-variable
  // form even when the geometry is known: folding gtid into tid/cta
  // splits one exact delta (e*dgtid) into two coupled terms the
  // interval/GCD tests can only check independently, losing e.g.
  // `out[gtid]` self-disjointness.
  const bool pure_gtid = !shared_space && a.c_tid == 0 && a.c_cta == 0 && b.c_tid == 0 &&
                         b.c_cta == 0 && (a.c_gtid != 0 || b.c_gtid != 0);

  // Fold gtid = cta*bdim + tid when the block size is known.
  if (b_known && !pure_gtid) {
    a.c_tid += a.c_gtid;
    a.c_cta += static_cast<i64>(bdim) * a.c_gtid;
    a.c_gtid = 0;
    b.c_tid += b.c_gtid;
    b.c_cta += static_cast<i64>(bdim) * b.c_gtid;
    b.c_gtid = 0;
  }

  const i64 wa = A.width, wb = B.width;
  const i64 d0 = self ? 0 : a.base - b.base;

  // Granule window for the address delta. Exact boundaries need both
  // sides' absolute residues; otherwise widen by g-1 on each side
  // (sound for any alignment).
  const bool exact = exact_ok && side_residue_known(a, g, opts.assume_aligned_params) &&
                     side_residue_known(b, g, opts.assume_aligned_params);
  i64 win_lo, win_hi;
  if (exact) {
    const i64 rB = mod_floor(b.base, g);
    const i64 fB = (rB + wb - 1) / g;
    win_lo = 1 - wa - rB;
    win_hi = g * (fB + 1) - 1 - rB;
  } else {
    win_lo = -(wa + g - 2);
    win_hi = wb + g - 2;
  }

  const i64 bmax = b_known ? static_cast<i64>(bdim) - 1 : 0;
  const i64 gmax = g_known ? static_cast<i64>(gdim) - 1 : 0;

  std::vector<System> systems;
  bool gtid_mode = false;
  i64 se1 = 0, se2 = 0;  // shared thread coefficients (for warp confinement)

  auto add_iter_vars = [&](System& s) {
    for (u32 i = 0; i < a.iters.size(); ++i) {
      const IterTerm& t = a.iters[i];
      s.vars.push_back(t.trip > 0 ? bounded(t.coeff, 0, t.trip - 1, kTagIterA, i)
                                  : lower(t.coeff, 0, kTagIterA, i));
    }
    for (u32 i = 0; i < b.iters.size(); ++i) {
      const IterTerm& t = b.iters[i];
      s.vars.push_back(t.trip > 0 ? bounded(-t.coeff, 0, t.trip - 1, kTagIterB, i)
                                  : lower(-t.coeff, 0, kTagIterB, i));
    }
  };
  auto base_system = [&]() {
    System s;
    s.base = d0;
    s.win_lo = win_lo;
    s.win_hi = win_hi;
    return s;
  };

  if (shared_space) {
    // Both threads live in one block; block-level terms take a common
    // value. With bdim unknown the split gtid = (block base) + tid keeps
    // the delta computable only when the gtid coefficients agree.
    if (b_known) {
      se1 = a.c_tid;
      se2 = b.c_tid;
    } else if (a.c_gtid == b.c_gtid) {
      se1 = a.c_tid + a.c_gtid;
      se2 = b.c_tid + b.c_gtid;
    } else {
      return out;  // conflict; no refutation possible
    }
    for (int sign = 0; sign < 2; ++sign) {
      System s = base_system();
      // dt = t1 - t2 != 0: two distinct threads of one block.
      s.vars.push_back(b_known ? bounded(se1, sign ? -bmax : 1, sign ? -1 : bmax, kTagDt)
                               : (sign ? upper(se1, -1, kTagDt) : lower(se1, 1, kTagDt)));
      s.vars.push_back(b_known ? bounded(se1 - se2, 0, bmax, kTagT2)
                               : lower(se1 - se2, 0, kTagT2));
      // The common block id (affects the delta when the cta coefficients
      // differ; kept otherwise so witnesses can read it).
      s.vars.push_back(g_known ? bounded(a.c_cta - b.c_cta, 0, gmax, kTagC2)
                               : lower(a.c_cta - b.c_cta, 0, kTagC2));
      add_iter_vars(s);
      systems.push_back(std::move(s));
      if (self && se1 == se2) break;  // sign cases are symmetric
    }
  } else if (pure_gtid) {
    // Global, pure gtid forms: gtid is globally unique, so distinctness
    // is exactly dgtid != 0 (bounded by the total thread count when the
    // geometry is known).
    gtid_mode = true;
    const i64 g1 = a.c_gtid, g2 = b.c_gtid;
    const i64 tmax = (b_known && g_known) ? static_cast<i64>(bdim) * gdim - 1 : 0;
    for (int sign = 0; sign < 2; ++sign) {
      System s = base_system();
      s.vars.push_back(tmax ? bounded(g1, sign ? -tmax : 1, sign ? -1 : tmax, kTagDt)
                            : (sign ? upper(g1, -1, kTagDt) : lower(g1, 1, kTagDt)));
      s.vars.push_back(tmax ? bounded(g1 - g2, 0, tmax, kTagT2) : lower(g1 - g2, 0, kTagT2));
      add_iter_vars(s);
      systems.push_back(std::move(s));
      if (self && g1 == g2) break;
    }
  } else if (b_known) {
    // Global, geometry known: delta = e1*dt + (e1-e2)*t2 + f1*dc +
    // (f1-f2)*c2 + iter terms, with (t1,cta1) != (t2,cta2) split into
    // dt>0, dt<0, and dt=0 with dc>0 / dc<0.
    const i64 e1 = a.c_tid, e2 = b.c_tid;
    const i64 f1 = a.c_cta, f2 = b.c_cta;
    for (int c = 0; c < 4; ++c) {
      if (shares_unique && c < 2) continue;  // tid pinned per block: t1 == t2
      System s = base_system();
      if (c < 2) {
        s.vars.push_back(bounded(e1, c ? -bmax : 1, c ? -1 : bmax, kTagDt));
        s.vars.push_back(g_known ? bounded(f1, -gmax, gmax, kTagDc) : free_var(f1, kTagDc));
      } else {
        s.vars.push_back(g_known ? bounded(f1, c == 2 ? 1 : -gmax, c == 2 ? gmax : -1, kTagDc)
                                 : (c == 2 ? lower(f1, 1, kTagDc) : upper(f1, -1, kTagDc)));
      }
      s.vars.push_back(bounded(e1 - e2, 0, bmax, kTagT2));
      s.vars.push_back(g_known ? bounded(f1 - f2, 0, gmax, kTagC2) : lower(f1 - f2, 0, kTagC2));
      add_iter_vars(s);
      systems.push_back(std::move(s));
    }
  } else if (a.c_tid == 0 && a.c_cta == 0 && b.c_tid == 0 && b.c_cta == 0) {
    // Global, pure gtid forms: gtid is globally unique, so distinctness
    // is exactly dgtid != 0.
    gtid_mode = true;
    const i64 g1 = a.c_gtid, g2 = b.c_gtid;
    for (int sign = 0; sign < 2; ++sign) {
      System s = base_system();
      s.vars.push_back(sign ? upper(g1, -1, kTagDt) : lower(g1, 1, kTagDt));
      s.vars.push_back(lower(g1 - g2, 0, kTagT2));
      add_iter_vars(s);
      systems.push_back(std::move(s));
      if (self && g1 == g2) break;
    }
  } else if (a.c_tid == 0 && a.c_gtid == 0 && b.c_tid == 0 && b.c_gtid == 0) {
    // Global, block-indexed forms with bdim unknown.
    const i64 f1 = a.c_cta, f2 = b.c_cta;
    if (!shares_unique) {
      // Two distinct threads of one block (thread terms are all zero).
      System s = base_system();
      s.vars.push_back(g_known ? bounded(f1 - f2, 0, gmax, kTagC2) : lower(f1 - f2, 0, kTagC2));
      add_iter_vars(s);
      systems.push_back(std::move(s));
    }
    for (int sign = 0; sign < 2; ++sign) {
      System s = base_system();
      s.vars.push_back(g_known ? bounded(f1, sign ? -gmax : 1, sign ? -1 : gmax, kTagDc)
                               : (sign ? upper(f1, -1, kTagDc) : lower(f1, 1, kTagDc)));
      s.vars.push_back(g_known ? bounded(f1 - f2, 0, gmax, kTagC2) : lower(f1 - f2, 0, kTagC2));
      add_iter_vars(s);
      systems.push_back(std::move(s));
      if (self && f1 == f2) break;
    }
  } else {
    // Mixed tid/block forms with unknown geometry: the delta depends on
    // the unknown block size — give up (conflict).
    return out;
  }

  if (systems.empty()) return out;

  bool any_feasible = false;
  for (const System& s : systems)
    if (feasible(s)) {
      any_feasible = true;
      break;
    }
  if (!force_conflict) out.conflict = any_feasible;
  if (!out.conflict) return out;

  // Warp confinement (shared space, hardware view): under the structural
  // conditions below every collision with equal non-thread parts lands
  // in one q-aligned thread group inside one warp — SIMD-ordered and
  // invisible to the shared RDU; the per-issue intra-warp WAW check
  // cannot fire either because distinct lanes are >= e >= width bytes
  // apart. Collisions with different non-thread parts shift the thread
  // groups by K granule rows and must be refuted separately.
  if (shared_space && opts.warp_synchronous) {
    const i64 W = opts.warp_size;
    bool ok = se1 == se2 && se1 > 0 && a.c_cta == 0 && b.c_cta == 0 &&
              (b_known || (a.c_gtid == 0 && b.c_gtid == 0)) && !a.uniform_unknown &&
              !b.uniform_unknown && (a.param_slot < 0 || opts.assume_aligned_params) &&
              g % se1 == 0 && W % (g / se1) == 0 && mod_floor(a.base, g) == 0 &&
              mod_floor(b.base, g) == 0 && wa <= se1 && wb <= se1;
    for (const IterTerm& t : a.iters) ok = ok && mod_floor(t.coeff, g) == 0;
    for (const IterTerm& t : b.iters) ok = ok && mod_floor(t.coeff, g) == 0;
    if (ok) {
      const i64 q = g / se1;
      // K = (b.base - a.base)/g + sum(cB/g)*iB - sum(cA/g)*iA; a
      // cross-group collision needs K != 0 with |K| <= (bdim-1) div q.
      const i64 k0 = (b.base - a.base) / g;
      if (b_known) {
        const i64 kQ = (static_cast<i64>(bdim) - 1) / q;
        bool confined = true;
        for (int sign = 0; sign < 2 && confined; ++sign) {
          System ks;
          ks.base = k0;
          ks.win_lo = sign ? -kQ : 1;
          ks.win_hi = sign ? -1 : kQ;
          for (u32 i = 0; i < a.iters.size(); ++i) {
            const IterTerm& t = a.iters[i];
            ks.vars.push_back(t.trip > 0 ? bounded(-t.coeff / g, 0, t.trip - 1, kTagIterA, i)
                                         : lower(-t.coeff / g, 0, kTagIterA, i));
          }
          for (u32 i = 0; i < b.iters.size(); ++i) {
            const IterTerm& t = b.iters[i];
            ks.vars.push_back(t.trip > 0 ? bounded(t.coeff / g, 0, t.trip - 1, kTagIterB, i)
                                         : lower(t.coeff / g, 0, kTagIterB, i));
          }
          confined = !feasible(ks);
        }
        out.warp_confined = confined;
      } else {
        out.warp_confined = k0 == 0 && a.iters.empty() && b.iters.empty();
      }
    }
    if (out.warp_confined) return out;  // hw-invisible: no witness needed
  }

  // Witness: enumerate concrete assignments, preferring RDU-visible
  // (cross-warp / cross-block) pairs so the witness reproduces under
  // hardware-model replay.
  const i64 beff = b_known ? bdim : 256;
  const i64 geff = g_known ? gdim : 16;
  const i64 W = opts.warp_size;

  auto accept_with = [&](const System& s, bool require_rdu) {
    return [&, require_rdu](const std::vector<i64>& vals) -> bool {
      i64 dt = 0, t2v = 0, dc = 0, c2v = 0, shared_cta_val = 0;
      bool t2_fixed = false, c2_fixed = false, has_dt = false, has_dc = false;
      std::vector<i64> ita(a.iters.size(), 0), itb(b.iters.size(), 0);
      for (size_t i = 0; i < s.vars.size(); ++i) {
        const Var& v = s.vars[i];
        switch (v.tag) {
          case kTagDt: dt = vals[i]; has_dt = true; break;
          case kTagT2: t2v = vals[i]; t2_fixed = v.coeff != 0; break;
          case kTagDc: dc = vals[i]; has_dc = true; break;
          case kTagC2:
            if (shared_space)
              shared_cta_val = vals[i];
            else {
              c2v = vals[i];
              c2_fixed = v.coeff != 0;
            }
            break;
          case kTagIterA: ita[v.aux] = vals[i]; break;
          case kTagIterB: itb[v.aux] = vals[i]; break;
          default: break;
        }
      }
      // Zero-coefficient position variables are free: place them so both
      // sides land in range.
      if (!t2_fixed) t2v = std::max<i64>(0, -dt);
      if (require_rdu && !t2_fixed) {
        // The thread position does not affect the addresses, so slide the
        // pair across a warp boundary: a |dt| < W collision at position 0
        // is intra-warp, the same collision straddling tid W-1/W is not.
        const i64 adt = dt < 0 ? -dt : dt;
        if (adt > 0 && adt < W && beff > W) t2v = dt > 0 ? W - dt : W;
      }
      if (!c2_fixed && !shared_space) c2v = std::max<i64>(0, -dc);
      i64 tid1, tid2, cta1, cta2, gt1, gt2;
      if (gtid_mode) {
        gt2 = t2v;
        gt1 = t2v + dt;
        if (gt1 < 0 || gt2 < 0) return false;
        tid1 = gt1 % beff;
        cta1 = gt1 / beff;
        tid2 = gt2 % beff;
        cta2 = gt2 / beff;
      } else {
        tid2 = t2v;
        tid1 = t2v + dt;
        if (shared_space) {
          cta1 = cta2 = shared_cta_val;
        } else {
          cta2 = c2v;
          cta1 = c2v + dc;
          // Same-block case with all thread coefficients zero: any two
          // distinct threads do.
          if (!has_dt && !has_dc && tid1 == tid2 && cta1 == cta2) tid2 = tid1 == 0 ? 1 : 0;
        }
        gt1 = cta1 * beff + tid1;
        gt2 = cta2 * beff + tid2;
      }
      if (tid1 < 0 || tid2 < 0 || tid1 >= beff || tid2 >= beff) return false;
      if (cta1 < 0 || cta2 < 0 || cta1 >= geff || cta2 >= geff) return false;
      if (tid1 == tid2 && cta1 == cta2) return false;  // not distinct
      if (shared_space && tid1 == tid2) return false;

      auto addr_of = [&](const SymAddr& sa, i64 tid, i64 cta, i64 gt,
                         const std::vector<i64>& its) {
        i64 v = sa.base + sa.c_tid * tid + sa.c_cta * cta + sa.c_gtid * gt;
        for (size_t k = 0; k < sa.iters.size(); ++k) v += sa.iters[k].coeff * its[k];
        return v;  // params and unknown uniform terms read as 0
      };
      const i64 a1 = addr_of(a, tid1, cta1, gt1, ita);
      const i64 a2 = addr_of(b, tid2, cta2, gt2, itb);
      if (a1 < 0 || a2 < 0) return false;
      const i64 glo = std::max(a1 / g, a2 / g);
      const i64 ghi = std::min((a1 + wa - 1) / g, (a2 + wb - 1) / g);
      if (glo > ghi) return false;  // the boxes miss: no common granule

      const bool same_warp = cta1 == cta2 && tid1 / W == tid2 / W;
      const bool lockstep_waw = self && A.is_store && B.is_store && a1 == a2 && ita == itb;
      const bool rdu = !same_warp || lockstep_waw;
      if (require_rdu && !rdu) return false;

      RaceWitness w;
      w.found = true;
      w.rdu_visible = rdu;
      w.pc = A.pc;
      w.other_pc = B.pc;
      w.tid1 = static_cast<u32>(tid1);
      w.tid2 = static_cast<u32>(tid2);
      w.cta1 = static_cast<u32>(cta1);
      w.cta2 = static_cast<u32>(cta2);
      for (size_t k = 0; k < a.iters.size(); ++k)
        w.iters1.emplace_back(a.iters[k].begin_pc, ita[k]);
      for (size_t k = 0; k < b.iters.size(); ++k)
        w.iters2.emplace_back(b.iters[k].begin_pc, itb[k]);
      w.addr1 = static_cast<u64>(a1);
      w.addr2 = static_cast<u64>(a2);
      w.granule = static_cast<u64>((glo)*g);
      out.witness = std::move(w);
      return true;
    };
  };

  for (int pass = 0; pass < 2 && !out.witness.found; ++pass) {
    for (const System& s : systems) {
      if (!feasible(s)) continue;
      if (Enumerator(s).run(accept_with(s, pass == 0))) break;
    }
  }
  return out;
}

}  // namespace haccrg::analysis
