// Control-flow graph over a sealed Program's flat instruction vector.
// The mini-PTX machine executes linearly through structured scopes (kIf/
// kElse/kEndIf only edit the active mask), so the only real edges are the
// fallthrough, the loop back-edge (kJump), the loop exits (kBreakIf /
// kBreakIfNot), and kExit termination. Basic blocks, dominators, and
// post-dominators computed here feed the static race analysis and its
// diagnostics.
#pragma once

#include <vector>

#include "isa/program.hpp"

namespace haccrg::analysis {

struct BasicBlock {
  u32 first = 0;  ///< pc of the first instruction
  u32 last = 0;   ///< pc of the last instruction (inclusive)
  std::vector<u32> succs;  ///< successor block indices
  std::vector<u32> preds;  ///< predecessor block indices
};

class Cfg {
 public:
  explicit Cfg(const isa::Program& program);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  u32 num_blocks() const { return static_cast<u32>(blocks_.size()); }
  u32 block_of(u32 pc) const { return block_of_[pc]; }

  /// Immediate dominator of `block` (entry block dominates itself).
  u32 idom(u32 block) const { return idom_[block]; }
  /// Immediate post-dominator; num_blocks() stands for the virtual exit.
  u32 ipdom(u32 block) const { return ipdom_[block]; }

  /// Does block `a` dominate block `b` (every path from entry to b
  /// passes a)?
  bool dominates(u32 a, u32 b) const;
  /// Does block `a` post-dominate block `b` (every path from b to any
  /// exit passes a)?
  bool postdominates(u32 a, u32 b) const;

  /// Instruction-level successors of `pc` (0, 1, or 2 entries).
  static void instr_succs(const isa::Program& program, u32 pc, std::vector<u32>& out);

 private:
  const isa::Program* program_;
  std::vector<BasicBlock> blocks_;
  std::vector<u32> block_of_;  // pc -> block index
  std::vector<u32> idom_;
  std::vector<u32> ipdom_;
  std::vector<std::vector<u64>> pdom_sets_;  // post-dominator bitsets (virtual exit = num_blocks)
};

}  // namespace haccrg::analysis
