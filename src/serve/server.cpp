#include "serve/server.hpp"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "serve/report.hpp"
#include "trace/index.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"

namespace haccrg::serve {

namespace {

/// Content address of a submitted trace. FNV-1a folding eight bytes per
/// step (the hash is in-process only, never persisted, so the wider
/// stride is free to differ from canonical byte-wise FNV); the cache key
/// also carries the byte count, so a collision needs two same-length
/// traces with the same hash — accepted odds for a cache whose worst
/// failure is serving the report of the colliding trace. Hashing is the
/// whole per-request cost of a memoized answer, which is why it strides.
u64 fnv1a(const u8* data, size_t size) {
  u64 hash = 0xcbf29ce484222325ull;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    u64 word;
    std::memcpy(&word, data + i, 8);
    hash ^= word;
    hash *= 0x100000001b3ull;
  }
  for (; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

struct Server::Impl {
  /// (content hash, byte count, kernel slice) — the identity replay
  /// results depend on. Worker count is deliberately absent: sharded
  /// replay is byte-identical across worker counts.
  using TraceKey = std::tuple<u64, u64, i64>;

  struct Job {
    u64 id = 0;
    JobState state = JobState::kQueued;
    std::vector<u8> trace;  ///< moved out when the job starts running
    u64 hash = 0;           ///< content hash, computed once at submit
    u32 workers = 1;
    i64 kernel = -1;
    std::string report;
    StatusCode error_code = StatusCode::kOk;
    std::string error;
  };

  /// Decode-once entry. The per-entry mutex serializes the first decode
  /// while letting unrelated traces decode concurrently; the server
  /// mutex is never held across a decode or replay.
  struct CacheEntry {
    std::mutex mu;
    bool ready = false;
    Status status;
    std::shared_ptr<const trace::DecodedTrace> decoded;
  };

  explicit Impl(const ServerConfig& cfg) : config(cfg) {
    if (config.workers == 0) config.workers = 1;
    for (u32 w = 0; w < config.workers; ++w)
      arenas.push_back(std::make_unique<trace::ReplayArena>());
    for (u32 w = 0; w < config.workers; ++w)
      threads.emplace_back([this, w] { worker(w); });
  }

  ServerConfig config;
  mutable std::mutex mu;
  std::condition_variable queue_cv;  ///< workers: queue non-empty or draining
  std::condition_variable done_cv;   ///< waiters: some job settled
  bool accepting = true;
  bool draining = false;
  u64 next_id = 1;
  std::map<u64, Job> jobs;
  std::deque<u64> queue;
  std::map<TraceKey, std::shared_ptr<CacheEntry>> trace_cache;
  std::map<TraceKey, std::string> memo;
  std::vector<std::unique_ptr<trace::ReplayArena>> arenas;  ///< one per worker
  std::vector<std::thread> threads;

  // Counters (guarded by mu).
  u64 submitted = 0;
  u64 rejected = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 cancelled = 0;
  u64 memo_hits = 0;
  u64 cache_hits = 0;
  u64 decodes = 0;

  void settle(std::unique_lock<std::mutex>& lock, Job& job, JobState state) {
    job.state = state;
    state == JobState::kDone ? ++completed : ++failed;
    lock.unlock();
    done_cv.notify_all();
    lock.lock();
  }

  Status decode(std::vector<u8> bytes, i64 kernel,
                std::shared_ptr<const trace::DecodedTrace>& out) {
    trace::TraceReader reader(std::move(bytes));
    auto decoded = std::make_shared<trace::DecodedTrace>();
    if (kernel < 0) {
      if (Status status = trace::decode_trace(reader, *decoded); !status.ok()) return status;
    } else {
      // The seek path: v2 traces use the file-carried index, v1 traces
      // fall back to a counted linear scan (trace/index.hpp).
      trace::TraceIndex index;
      if (Status status = trace::load_or_build_index(reader, index); !status.ok()) return status;
      if (static_cast<u64>(kernel) >= index.kernels.size())
        return Status::not_found("serve: trace has no kernel #" + std::to_string(kernel));
      if (Status status =
              trace::decode_trace_kernel(reader, index.kernels[static_cast<u64>(kernel)], *decoded);
          !status.ok())
        return status;
    }
    out = std::move(decoded);
    return Status();
  }

  void worker(u32 index) {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      queue_cv.wait(lock, [this] { return !queue.empty() || draining; });
      if (queue.empty()) return;  // draining and nothing left
      const u64 id = queue.front();
      queue.pop_front();
      Job& job = jobs.at(id);
      if (job.state == JobState::kCancelled) continue;
      job.state = JobState::kRunning;
      std::vector<u8> bytes = std::move(job.trace);
      const u32 workers = job.workers;
      const i64 kernel = job.kernel;
      const TraceKey key{job.hash, bytes.size(), kernel};

      // A memo entry may have landed between this job's submit-time memo
      // check and now (an identical job ahead of it in the queue).
      if (config.memoize) {
        auto hit = memo.find(key);
        if (hit != memo.end()) {
          ++memo_hits;
          job.report = hit->second;
          settle(lock, job, JobState::kDone);
          continue;
        }
      }

      auto [slot, inserted] = trace_cache.emplace(key, nullptr);
      if (inserted) slot->second = std::make_shared<CacheEntry>();
      std::shared_ptr<CacheEntry> entry = slot->second;
      lock.unlock();

      Status job_status;
      std::shared_ptr<const trace::DecodedTrace> decoded;
      bool decoded_here = false;
      {
        std::lock_guard<std::mutex> entry_lock(entry->mu);
        if (!entry->ready) {
          entry->status = decode(std::move(bytes), kernel, entry->decoded);
          entry->ready = true;
          decoded_here = true;
        }
        job_status = entry->status;
        decoded = entry->decoded;
      }

      std::string report;
      if (job_status.ok()) {
        trace::ReplayOptions opts;
        opts.arena = arenas[index].get();
        const trace::ReplayResult result = trace::replay_sharded(*decoded, workers, opts);
        if (result.ok)
          report = build_report_json(result);
        else
          job_status = result.status();
      }

      lock.lock();
      decoded_here ? ++decodes : ++cache_hits;
      if (job_status.ok()) {
        if (config.memoize) memo.emplace(key, report);
        job.report = std::move(report);
        settle(lock, job, JobState::kDone);
      } else {
        job.error_code = job_status.code();
        job.error = job_status.message();
        settle(lock, job, JobState::kFailed);
      }
    }
  }
};

Server::Server(const ServerConfig& config) : impl_(std::make_unique<Impl>(config)) {}

Server::~Server() { shutdown(); }

Status Server::submit(const std::vector<u8>& trace_bytes, u32 workers, i64 kernel,
                      u64& job_id_out) {
  if (trace_bytes.empty()) return Status::invalid_argument("serve: empty trace");
  if (trace_bytes.size() > impl_->config.max_trace_bytes)
    return Status::invalid_argument("serve: trace exceeds the size cap");
  if (workers == 0 || workers > 64)
    return Status::invalid_argument("serve: workers must be 1..64");
  // Hash outside the lock: for a large trace this is the dominant cost
  // of a repeated submission and must not serialize the service.
  const u64 hash = fnv1a(trace_bytes.data(), trace_bytes.size());
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->accepting) {
    ++impl_->rejected;
    return Status::unavailable("serve: shutting down");
  }
  // Memo fast path: a trace the service has already replayed is answered
  // at submit time — the job is born settled, never copies the trace,
  // never occupies a queue slot (so it is immune to queue-full
  // rejection: answering from cache needs no capacity).
  if (impl_->config.memoize) {
    auto hit = impl_->memo.find(Impl::TraceKey{hash, trace_bytes.size(), kernel});
    if (hit != impl_->memo.end()) {
      const u64 id = impl_->next_id++;
      Impl::Job& job = impl_->jobs[id];
      job.id = id;
      job.hash = hash;
      job.workers = workers;
      job.kernel = kernel;
      job.state = JobState::kDone;
      job.report = hit->second;
      ++impl_->submitted;
      ++impl_->memo_hits;
      ++impl_->completed;
      job_id_out = id;
      return Status();
    }
  }
  if (impl_->queue.size() >= impl_->config.max_queue) {
    ++impl_->rejected;
    return Status::unavailable("serve: job queue is full, retry later");
  }
  const u64 id = impl_->next_id++;
  Impl::Job& job = impl_->jobs[id];
  job.id = id;
  job.trace = trace_bytes;  // the one copy a queued job pays
  job.hash = hash;
  job.workers = workers;
  job.kernel = kernel;
  impl_->queue.push_back(id);
  ++impl_->submitted;
  impl_->queue_cv.notify_one();
  job_id_out = id;
  return Status();
}

Status Server::status(u64 job_id, JobInfo& out) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->jobs.find(job_id);
  if (it == impl_->jobs.end()) return Status::not_found("serve: no such job");
  out.id = job_id;
  out.state = it->second.state;
  out.error = it->second.error;
  return Status();
}

Status Server::result(u64 job_id, bool wait, std::string& json_out) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  auto it = impl_->jobs.find(job_id);
  if (it == impl_->jobs.end()) return Status::not_found("serve: no such job");
  Impl::Job& job = it->second;
  if (wait) {
    impl_->done_cv.wait(lock, [&job] {
      return job.state != JobState::kQueued && job.state != JobState::kRunning;
    });
  }
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kRunning:
      return Status::unavailable("serve: job still " +
                                 std::string(job_state_name(job.state)));
    case JobState::kCancelled:
      return Status::invalid_argument("serve: job was cancelled");
    case JobState::kFailed:
      return Status(job.error_code, job.error);
    case JobState::kDone:
      break;
  }
  json_out = job.report;
  return Status();
}

Status Server::cancel(u64 job_id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->jobs.find(job_id);
  if (it == impl_->jobs.end()) return Status::not_found("serve: no such job");
  Impl::Job& job = it->second;
  if (job.state != JobState::kQueued)
    return Status::invalid_argument("serve: job is already " +
                                    std::string(job_state_name(job.state)));
  job.state = JobState::kCancelled;  // left in the deque; workers skip it
  job.trace.clear();
  job.trace.shrink_to_fit();
  ++impl_->cancelled;
  impl_->done_cv.notify_all();  // wake result(wait=true) callers on this job
  return Status();
}

std::string Server::stats_json() const {
  u64 arena_reuses = 0;
  u64 arena_builds = 0;
  for (const auto& arena : impl_->arenas) {
    arena_reuses += arena->reuses();
    arena_builds += arena->builds();
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{";
  auto field = [&out](const char* key, u64 value) {
    out += '"';
    out += key;
    out += "\": ";
    out += std::to_string(value);
    out += ", ";
  };
  field("workers", impl_->config.workers);
  field("max_queue", impl_->config.max_queue);
  field("queue_depth", impl_->queue.size());
  field("submitted", impl_->submitted);
  field("completed", impl_->completed);
  field("failed", impl_->failed);
  field("cancelled", impl_->cancelled);
  field("rejected", impl_->rejected);
  field("trace_decodes", impl_->decodes);
  field("trace_cache_hits", impl_->cache_hits);
  field("memo_hits", impl_->memo_hits);
  field("arena_reuses", arena_reuses);
  field("arena_builds", arena_builds);
  // Satellite stat: how often an index-less (v1) trace forced the
  // linear-scan fallback on the seek path (process-wide).
  out += "\"index_missing\": " + std::to_string(trace::index_missing_count()) + "}";
  return out;
}

void Server::shutdown() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->accepting = false;
    impl_->draining = true;
    threads = std::move(impl_->threads);
    impl_->threads.clear();
  }
  impl_->queue_cv.notify_all();
  for (std::thread& t : threads) t.join();
}

Response Server::handle_request(const Request& request) {
  Response response;
  Status status;
  switch (request.verb) {
    case Verb::kSubmit: {
      u64 id = 0;
      status = submit(request.trace, request.workers, request.kernel, id);
      if (status.ok()) {
        response.job_id = id;
        response.state = "queued";
      }
      break;
    }
    case Verb::kStatus: {
      JobInfo info;
      status = this->status(request.job_id, info);
      if (status.ok()) {
        response.job_id = info.id;
        response.state = std::string(job_state_name(info.state));
        response.body = info.error;
      }
      break;
    }
    case Verb::kResult: {
      std::string json;
      status = result(request.job_id, request.wait, json);
      if (status.ok()) {
        response.job_id = request.job_id;
        response.state = "done";
        response.body = std::move(json);
      }
      break;
    }
    case Verb::kCancel:
      status = cancel(request.job_id);
      if (status.ok()) {
        response.job_id = request.job_id;
        response.state = "cancelled";
      }
      break;
    case Verb::kStats:
      response.body = stats_json();
      break;
    case Verb::kShutdown:
      // Drain before answering: an OK here means every accepted job has
      // settled and its result is queryable.
      shutdown();
      response.state = "drained";
      break;
  }
  if (status.ok()) {
    response.ok = true;
  } else {
    response.ok = false;
    response.code = status.code();
    response.body = status.message();
  }
  return response;
}

void Server::handle_frame(const u8* data, size_t size, std::vector<u8>& response_payload_out) {
  Request request;
  Response response;
  if (Status status = parse_request(data, size, request); !status.ok()) {
    response.ok = false;
    response.code = status.code();
    response.body = status.message();
  } else {
    response = handle_request(request);
  }
  response_payload_out.clear();
  encode_response(response, response_payload_out);
}

}  // namespace haccrg::serve
