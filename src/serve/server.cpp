#include "serve/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "serve/report.hpp"
#include "trace/index.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"

namespace haccrg::serve {

namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Content address of a submitted trace. FNV-1a folding eight bytes per
/// step (the hash is in-process only, never persisted, so the wider
/// stride is free to differ from canonical byte-wise FNV); the cache key
/// also carries the byte count, so a collision needs two same-length
/// traces with the same hash — accepted odds for a cache whose worst
/// failure is serving the report of the colliding trace. Hashing is the
/// whole per-request cost of a memoized answer, which is why it strides.
u64 fnv1a(const u8* data, size_t size) {
  u64 hash = 0xcbf29ce484222325ull;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    u64 word;
    std::memcpy(&word, data + i, 8);
    hash ^= word;
    hash *= 0x100000001b3ull;
  }
  for (; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kTimedOut: return "timed-out";
  }
  return "?";
}

struct Server::Impl {
  /// (content hash, byte count, kernel slice) — the identity replay
  /// results depend on. Worker count is deliberately absent: sharded
  /// replay is byte-identical across worker counts.
  using TraceKey = std::tuple<u64, u64, i64>;
  /// (content hash, byte count) — quarantine identity: a poison pill is
  /// the byte image, whatever slice of it a job asked for.
  using ImageKey = std::pair<u64, u64>;

  struct Job {
    u64 id = 0;
    JobState state = JobState::kQueued;
    std::vector<u8> trace;  ///< moved out when the job starts running
    u64 hash = 0;           ///< content hash, computed once at submit
    u64 trace_size = 0;
    u32 workers = 1;
    i64 kernel = -1;
    u32 deadline_ms = 0;  ///< 0 = no deadline
    steady_clock::time_point started{};  ///< set when the job starts running
    trace::CancelToken cancel;  ///< set by the watchdog at the deadline;
                                ///< safe here: map nodes never move
    std::string report;
    StatusCode error_code = StatusCode::kOk;
    std::string error;
  };

  /// Decode-once entry. The per-entry mutex serializes the first decode
  /// while letting unrelated traces decode concurrently; the server
  /// mutex is never held across a decode or replay.
  struct CacheEntry {
    std::mutex mu;
    bool ready = false;
    Status status;
    std::shared_ptr<const trace::DecodedTrace> decoded;
  };

  struct CacheSlot {
    std::shared_ptr<CacheEntry> entry;
    u64 last_used = 0;
    u64 footprint = 0;  ///< decoded bytes charged against max_memo_bytes;
                        ///< set (under mu) by the worker that decoded
  };

  struct MemoEntry {
    std::string report;
    u64 last_used = 0;
  };

  explicit Impl(const ServerConfig& cfg) : config(cfg), faults(cfg.faults) {
    if (config.workers == 0) config.workers = 1;
    if (config.watchdog_interval_ms == 0) config.watchdog_interval_ms = 1;
    for (u32 w = 0; w < config.workers; ++w)
      arenas.push_back(std::make_unique<trace::ReplayArena>());
    for (u32 w = 0; w < config.workers; ++w)
      threads.emplace_back([this, w] { worker(w); });
    watchdog_thread = std::thread([this] { watchdog(); });
  }

  ServerConfig config;
  fault::ServeFaults faults;  ///< thread-safe; rolls are stateless
  mutable std::mutex mu;
  std::condition_variable queue_cv;  ///< workers: queue non-empty or draining
  std::condition_variable done_cv;   ///< waiters: some job settled
  std::condition_variable watchdog_cv;  ///< watchdog: poll tick or stop
  bool accepting = true;
  bool draining = false;
  bool stop_watchdog = false;
  u64 next_id = 1;
  u64 submit_seq = 0;  ///< submit-attempt ordinal (queue-reject fault key)
  std::atomic<u64> frame_seq{0};  ///< frame ordinal (frame fault key)
  u32 active = 0;  ///< jobs currently being processed by a worker
  std::map<u64, Job> jobs;
  std::deque<u64> queue;
  std::map<TraceKey, CacheSlot> trace_cache;
  std::map<TraceKey, MemoEntry> memo;
  std::map<ImageKey, u32> fail_counts;  ///< worker-side failures per image
  std::vector<std::unique_ptr<trace::ReplayArena>> arenas;  ///< one per worker
  std::vector<std::thread> threads;
  std::thread watchdog_thread;

  // Counters (guarded by mu).
  u64 submitted = 0;
  u64 rejected = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 cancelled = 0;
  u64 timed_out = 0;
  u64 drain_cancelled = 0;
  u64 memo_hits = 0;
  u64 cache_hits = 0;
  u64 decodes = 0;
  u64 lru_tick = 0;
  u64 memo_bytes = 0;
  u64 cache_bytes = 0;
  u64 memo_evictions = 0;
  u64 cache_evictions = 0;
  u64 late_results = 0;    ///< worker results discarded after a watchdog settle
  u64 arena_recycles = 0;  ///< arenas rebuilt after a late result
  u64 quarantined = 0;     ///< trace images that crossed the failure threshold
  u64 quarantine_rejected = 0;  ///< submits refused because the image is poisoned

  static u64 memo_footprint(const std::string& report) { return report.size() + 64; }

  void settle(std::unique_lock<std::mutex>& lock, Job& job, JobState state) {
    job.state = state;
    switch (state) {
      case JobState::kDone: ++completed; break;
      case JobState::kFailed: ++failed; break;
      case JobState::kCancelled: ++cancelled; break;
      case JobState::kTimedOut: ++timed_out; break;
      case JobState::kQueued:
      case JobState::kRunning: break;
    }
    lock.unlock();
    done_cv.notify_all();
    lock.lock();
  }

  bool is_quarantined(u64 hash, u64 size) const {
    if (config.quarantine_threshold == 0) return false;
    auto it = fail_counts.find(ImageKey{hash, size});
    return it != fail_counts.end() && it->second >= config.quarantine_threshold;
  }

  /// Record a worker-side failure of one image; crossing the threshold
  /// poisons it. Timeouts are deliberately not counted — they depend on
  /// the deadline a caller chose, not on the bytes.
  void note_failure(u64 hash, u64 size) {
    if (config.quarantine_threshold == 0) return;
    u32& count = fail_counts[ImageKey{hash, size}];
    if (count >= config.quarantine_threshold) return;
    if (++count == config.quarantine_threshold) ++quarantined;
  }

  /// Evict least-recently-used memo/cache entries until the combined
  /// footprint fits max_memo_bytes. The maps are small (tens of
  /// entries), so a linear scan per eviction beats the bookkeeping of an
  /// intrusive list. Never evicts the last remaining entry — the one
  /// just inserted is always allowed to exist.
  void maybe_evict() {
    while (memo_bytes + cache_bytes > config.max_memo_bytes &&
           memo.size() + trace_cache.size() > 1) {
      u64 best_tick = ~u64{0};
      auto best_memo = memo.end();
      auto best_cache = trace_cache.end();
      for (auto it = memo.begin(); it != memo.end(); ++it) {
        if (it->second.last_used < best_tick) {
          best_tick = it->second.last_used;
          best_memo = it;
          best_cache = trace_cache.end();
        }
      }
      for (auto it = trace_cache.begin(); it != trace_cache.end(); ++it) {
        if (it->second.last_used < best_tick) {
          best_tick = it->second.last_used;
          best_cache = it;
          best_memo = memo.end();
        }
      }
      if (best_cache != trace_cache.end()) {
        cache_bytes -= best_cache->second.footprint;
        trace_cache.erase(best_cache);
        ++cache_evictions;
      } else if (best_memo != memo.end()) {
        memo_bytes -= memo_footprint(best_memo->second.report);
        memo.erase(best_memo);
        ++memo_evictions;
      } else {
        return;  // both maps empty — nothing left to evict
      }
    }
  }

  Status decode(std::vector<u8> bytes, i64 kernel,
                std::shared_ptr<const trace::DecodedTrace>& out) {
    trace::TraceReader reader(std::move(bytes));
    auto decoded = std::make_shared<trace::DecodedTrace>();
    if (kernel < 0) {
      if (Status status = trace::decode_trace(reader, *decoded); !status.ok()) return status;
    } else {
      // The seek path: v2 traces use the file-carried index, v1 traces
      // fall back to a counted linear scan (trace/index.hpp).
      trace::TraceIndex index;
      if (Status status = trace::load_or_build_index(reader, index); !status.ok()) return status;
      if (static_cast<u64>(kernel) >= index.kernels.size())
        return Status::not_found("serve: trace has no kernel #" + std::to_string(kernel));
      if (Status status =
              trace::decode_trace_kernel(reader, index.kernels[static_cast<u64>(kernel)], *decoded);
          !status.ok())
        return status;
    }
    out = std::move(decoded);
    return Status();
  }

  /// Watchdog loop: at every tick, cancel running jobs past their
  /// deadline (the replay aborts cooperatively at the next granule
  /// batch) and hard-settle any still running past deadline + grace —
  /// the backstop for a worker that cannot observe the token (e.g. an
  /// injected stall). The worker discovers the settle when it returns
  /// (late_results) and recycles its arena.
  void watchdog() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stop_watchdog) {
      watchdog_cv.wait_for(lock, milliseconds(config.watchdog_interval_ms),
                           [this] { return stop_watchdog; });
      if (stop_watchdog) return;
      const auto now = steady_clock::now();
      std::vector<u64> hard;
      for (auto& [id, job] : jobs) {
        if (job.state != JobState::kRunning || job.deadline_ms == 0) continue;
        const i64 elapsed =
            std::chrono::duration_cast<milliseconds>(now - job.started).count();
        if (elapsed >= static_cast<i64>(job.deadline_ms)) job.cancel.cancel();
        if (elapsed >= static_cast<i64>(job.deadline_ms) +
                           static_cast<i64>(config.deadline_grace_ms))
          hard.push_back(id);
      }
      // settle() drops the lock to notify, so re-check each candidate.
      for (u64 id : hard) {
        auto it = jobs.find(id);
        if (it == jobs.end() || it->second.state != JobState::kRunning) continue;
        it->second.error_code = StatusCode::kDeadlineExceeded;
        it->second.error = "serve: hard deadline exceeded (watchdog)";
        settle(lock, it->second, JobState::kTimedOut);
      }
    }
  }

  void worker(u32 index) {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      queue_cv.wait(lock, [this] { return !queue.empty() || draining; });
      if (queue.empty()) return;  // draining and nothing left
      const u64 id = queue.front();
      queue.pop_front();
      Job& job = jobs.at(id);
      if (job.state != JobState::kQueued) continue;  // cancelled while queued
      job.state = JobState::kRunning;
      job.started = steady_clock::now();
      job.cancel.reset();
      ++active;
      std::vector<u8> bytes = std::move(job.trace);
      const u32 workers = job.workers;
      const i64 kernel = job.kernel;
      const u64 hash = job.hash;
      const u64 trace_size = bytes.size();
      const TraceKey key{hash, trace_size, kernel};

      // A memo entry may have landed between this job's submit-time memo
      // check and now (an identical job ahead of it in the queue).
      if (config.memoize) {
        auto hit = memo.find(key);
        if (hit != memo.end()) {
          ++memo_hits;
          hit->second.last_used = ++lru_tick;
          job.report = hit->second.report;
          --active;
          settle(lock, job, JobState::kDone);
          continue;
        }
      }

      auto [slot, inserted] = trace_cache.try_emplace(key);
      if (inserted) slot->second.entry = std::make_shared<CacheEntry>();
      slot->second.last_used = ++lru_tick;
      std::shared_ptr<CacheEntry> entry = slot->second.entry;
      lock.unlock();

      // Injected worker stall (chaos): burn wall-clock in cancellable
      // slices so the deadline machinery — not the stall — decides the
      // job's fate. Without a deadline the job simply finishes late.
      if (faults.roll(fault::FaultSite::kServeWorkerStall, id)) {
        const auto until = steady_clock::now() + milliseconds(config.fault_stall_ms);
        while (steady_clock::now() < until && !job.cancel.cancelled())
          std::this_thread::sleep_for(milliseconds(1));
      }

      // Crash containment: nothing in here may kill the worker. Decode
      // and replay are Status-returning by design; the catch blocks turn
      // anything that still throws into this job's kFailed.
      Status job_status;
      std::shared_ptr<const trace::DecodedTrace> decoded;
      bool decoded_here = false;
      u64 here_footprint = 0;
      std::string report;
      try {
        u64 pick = 0;
        if (faults.roll(fault::FaultSite::kServeDecodeCorrupt, id, &pick) && !bytes.empty())
          bytes[pick % bytes.size()] ^= static_cast<u8>(1u << ((pick >> 32) % 8));
        {
          std::lock_guard<std::mutex> entry_lock(entry->mu);
          if (!entry->ready) {
            entry->status = decode(std::move(bytes), kernel, entry->decoded);
            entry->ready = true;
            decoded_here = true;
            if (entry->decoded != nullptr)
              here_footprint = entry->decoded->events.size() * sizeof(trace::Event) +
                               sizeof(trace::DecodedTrace);
          }
          job_status = entry->status;
          decoded = entry->decoded;
        }
        if (job_status.ok()) {
          trace::ReplayOptions opts;
          opts.arena = arenas[index].get();
          opts.cancel = &job.cancel;
          const trace::ReplayResult result = trace::replay_sharded(*decoded, workers, opts);
          if (result.ok)
            report = build_report_json(result);
          else
            job_status = result.status();
        }
      } catch (const std::exception& e) {
        job_status = Status::corrupt(std::string("serve: worker exception: ") + e.what());
      } catch (...) {
        job_status = Status::corrupt("serve: worker exception (non-standard)");
      }

      lock.lock();
      decoded_here ? ++decodes : ++cache_hits;
      if (decoded_here) {
        // The slot may have been evicted while we decoded; only charge
        // the footprint if our entry is still the resident one.
        auto it = trace_cache.find(key);
        if (it != trace_cache.end() && it->second.entry == entry) {
          it->second.footprint = here_footprint;
          cache_bytes += here_footprint;
          maybe_evict();
        }
      }
      --active;

      if (job.state != JobState::kRunning) {
        // The watchdog hard-settled this job while we were replaying:
        // the result is late. Drop it and rebuild this worker's arena —
        // an aborted replay leaves no state behind by construction, but
        // a recycled arena makes that a guarantee rather than an
        // invariant to trust after an injected stall.
        ++late_results;
        ++arena_recycles;
        lock.unlock();
        arenas[index] = std::make_unique<trace::ReplayArena>();
        lock.lock();
        continue;
      }

      if (job_status.ok()) {
        if (config.memoize) {
          auto [hit, fresh] = memo.try_emplace(key);
          if (fresh) {
            hit->second.report = report;
            memo_bytes += memo_footprint(report);
          }
          hit->second.last_used = ++lru_tick;
          maybe_evict();
        }
        job.report = std::move(report);
        settle(lock, job, JobState::kDone);
      } else if (job_status.code() == StatusCode::kDeadlineExceeded) {
        job.error_code = job_status.code();
        job.error = job_status.message();
        settle(lock, job, JobState::kTimedOut);
      } else {
        job.error_code = job_status.code();
        job.error = job_status.message();
        note_failure(hash, trace_size);
        settle(lock, job, JobState::kFailed);
      }
    }
  }
};

Server::Server(const ServerConfig& config) : impl_(std::make_unique<Impl>(config)) {}

Server::~Server() { shutdown(); }

Status Server::submit(const std::vector<u8>& trace_bytes, u32 workers, i64 kernel,
                      u32 deadline_ms, u64& job_id_out) {
  if (trace_bytes.empty()) return Status::invalid_argument("serve: empty trace");
  if (trace_bytes.size() > impl_->config.max_trace_bytes)
    return Status::invalid_argument("serve: trace exceeds the size cap");
  if (workers == 0 || workers > 64)
    return Status::invalid_argument("serve: workers must be 1..64");
  // Hash outside the lock: for a large trace this is the dominant cost
  // of a repeated submission and must not serialize the service.
  const u64 hash = fnv1a(trace_bytes.data(), trace_bytes.size());
  std::lock_guard<std::mutex> lock(impl_->mu);
  const u64 ordinal = impl_->submit_seq++;
  if (!impl_->accepting) {
    ++impl_->rejected;
    return Status::unavailable("serve: shutting down");
  }
  // Poison pill: an image that keeps failing is refused outright — it
  // must not consume queue slots, decode time, or retry budgets.
  if (impl_->is_quarantined(hash, trace_bytes.size())) {
    ++impl_->quarantine_rejected;
    return Status::corrupt("serve: trace image is quarantined after repeated failures");
  }
  // Memo fast path: a trace the service has already replayed is answered
  // at submit time — the job is born settled, never copies the trace,
  // never occupies a queue slot (so it is immune to queue-full
  // rejection: answering from cache needs no capacity).
  if (impl_->config.memoize) {
    auto hit = impl_->memo.find(Impl::TraceKey{hash, trace_bytes.size(), kernel});
    if (hit != impl_->memo.end()) {
      hit->second.last_used = ++impl_->lru_tick;
      const u64 id = impl_->next_id++;
      Impl::Job& job = impl_->jobs[id];
      job.id = id;
      job.hash = hash;
      job.trace_size = trace_bytes.size();
      job.workers = workers;
      job.kernel = kernel;
      job.state = JobState::kDone;
      job.report = hit->second.report;
      ++impl_->submitted;
      ++impl_->memo_hits;
      ++impl_->completed;
      job_id_out = id;
      return Status();
    }
  }
  // Injected queue-full burst (chaos): keyed by the submit ordinal, so
  // placement depends only on submission order, never on scheduling.
  if (impl_->faults.roll(fault::FaultSite::kServeQueueReject, ordinal)) {
    ++impl_->rejected;
    return Status::unavailable("serve: job queue is full, retry later");
  }
  if (impl_->queue.size() >= impl_->config.max_queue) {
    ++impl_->rejected;
    return Status::unavailable("serve: job queue is full, retry later");
  }
  const u64 id = impl_->next_id++;
  Impl::Job& job = impl_->jobs[id];
  job.id = id;
  job.trace = trace_bytes;  // the one copy a queued job pays
  job.hash = hash;
  job.trace_size = trace_bytes.size();
  job.workers = workers;
  job.kernel = kernel;
  job.deadline_ms = deadline_ms != 0 ? deadline_ms : impl_->config.default_deadline_ms;
  impl_->queue.push_back(id);
  ++impl_->submitted;
  impl_->queue_cv.notify_one();
  job_id_out = id;
  return Status();
}

Status Server::status(u64 job_id, JobInfo& out) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->jobs.find(job_id);
  if (it == impl_->jobs.end()) return Status::not_found("serve: no such job");
  out.id = job_id;
  out.state = it->second.state;
  out.error = it->second.error;
  return Status();
}

Status Server::result(u64 job_id, bool wait, std::string& json_out) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  auto it = impl_->jobs.find(job_id);
  if (it == impl_->jobs.end()) return Status::not_found("serve: no such job");
  Impl::Job& job = it->second;
  if (wait) {
    impl_->done_cv.wait(lock, [&job] {
      return job.state != JobState::kQueued && job.state != JobState::kRunning;
    });
  }
  switch (job.state) {
    case JobState::kQueued:
    case JobState::kRunning:
      return Status::unavailable("serve: job still " +
                                 std::string(job_state_name(job.state)));
    case JobState::kCancelled:
      return Status::invalid_argument("serve: job was cancelled");
    case JobState::kTimedOut:
      return Status::deadline_exceeded(
          job.error.empty() ? "serve: job timed out" : job.error);
    case JobState::kFailed:
      return Status(job.error_code, job.error);
    case JobState::kDone:
      break;
  }
  json_out = job.report;
  return Status();
}

Status Server::cancel(u64 job_id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->jobs.find(job_id);
  if (it == impl_->jobs.end()) return Status::not_found("serve: no such job");
  Impl::Job& job = it->second;
  if (job.state != JobState::kQueued)
    return Status::invalid_argument("serve: job is already " +
                                    std::string(job_state_name(job.state)));
  job.state = JobState::kCancelled;  // left in the deque; workers skip it
  job.trace.clear();
  job.trace.shrink_to_fit();
  ++impl_->cancelled;
  impl_->done_cv.notify_all();  // wake result(wait=true) callers on this job
  return Status();
}

std::string Server::stats_json() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  // Arena counters are read under mu: a worker recycling its arena
  // (replacing the unique_ptr) must not race this loop.
  u64 arena_reuses = 0;
  u64 arena_builds = 0;
  for (const auto& arena : impl_->arenas) {
    arena_reuses += arena->reuses();
    arena_builds += arena->builds();
  }
  std::string out = "{";
  auto field = [&out](const char* key, u64 value) {
    out += '"';
    out += key;
    out += "\": ";
    out += std::to_string(value);
    out += ", ";
  };
  field("workers", impl_->config.workers);
  field("max_queue", impl_->config.max_queue);
  field("queue_depth", impl_->queue.size());
  field("submitted", impl_->submitted);
  field("completed", impl_->completed);
  field("failed", impl_->failed);
  field("cancelled", impl_->cancelled);
  field("timed_out", impl_->timed_out);
  field("drain_cancelled", impl_->drain_cancelled);
  field("rejected", impl_->rejected);
  field("trace_decodes", impl_->decodes);
  field("trace_cache_hits", impl_->cache_hits);
  field("memo_hits", impl_->memo_hits);
  field("memo_bytes", impl_->memo_bytes);
  field("cache_bytes", impl_->cache_bytes);
  field("memo_evictions", impl_->memo_evictions);
  field("cache_evictions", impl_->cache_evictions);
  field("late_results", impl_->late_results);
  field("arena_recycles", impl_->arena_recycles);
  field("quarantined", impl_->quarantined);
  field("quarantine_rejected", impl_->quarantine_rejected);
  field("arena_reuses", arena_reuses);
  field("arena_builds", arena_builds);
  // Injected serving faults, non-zero sites only — a quiet (zero-rate)
  // server emits no fault fields at all.
  for (u32 i = fault::kFirstServeSite; i < fault::kNumFaultSites; ++i) {
    const auto site = static_cast<fault::FaultSite>(i);
    const u64 count = impl_->faults.injected(site);
    if (count == 0) continue;
    field(("fault." + std::string(fault::fault_site_key(site))).c_str(), count);
  }
  // Satellite stat: how often an index-less (v1) trace forced the
  // linear-scan fallback on the seek path (process-wide).
  out += "\"index_missing\": " + std::to_string(trace::index_missing_count()) + "}";
  return out;
}

void Server::shutdown(i64 drain_timeout_ms) {
  std::vector<std::thread> threads;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->accepting = false;
    if (drain_timeout_ms >= 0) {
      // Bounded drain: give the workers the budget, then settle whatever
      // is still queued as kCancelled. Running jobs always finish — a
      // worker is never killed mid-replay.
      const auto deadline = steady_clock::now() + milliseconds(drain_timeout_ms);
      impl_->done_cv.wait_until(lock, deadline, [this] {
        return impl_->queue.empty() && impl_->active == 0;
      });
      while (!impl_->queue.empty()) {
        const u64 id = impl_->queue.front();
        impl_->queue.pop_front();
        auto it = impl_->jobs.find(id);
        if (it == impl_->jobs.end() || it->second.state != JobState::kQueued) continue;
        it->second.trace.clear();
        it->second.trace.shrink_to_fit();
        it->second.error = "serve: cancelled by drain timeout";
        ++impl_->drain_cancelled;
        impl_->settle(lock, it->second, JobState::kCancelled);
      }
    }
    impl_->draining = true;
    threads = std::move(impl_->threads);
    impl_->threads.clear();
  }
  impl_->queue_cv.notify_all();
  for (std::thread& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop_watchdog = true;
  }
  impl_->watchdog_cv.notify_all();
  if (impl_->watchdog_thread.joinable()) impl_->watchdog_thread.join();
}

Response Server::handle_request(const Request& request) {
  Response response;
  Status status;
  switch (request.verb) {
    case Verb::kSubmit: {
      u64 id = 0;
      status = submit(request.trace, request.workers, request.kernel, request.deadline_ms, id);
      if (status.ok()) {
        response.job_id = id;
        response.state = "queued";
      }
      break;
    }
    case Verb::kStatus: {
      JobInfo info;
      status = this->status(request.job_id, info);
      if (status.ok()) {
        response.job_id = info.id;
        response.state = std::string(job_state_name(info.state));
        response.body = info.error;
      }
      break;
    }
    case Verb::kResult: {
      std::string json;
      status = result(request.job_id, request.wait, json);
      if (status.ok()) {
        response.job_id = request.job_id;
        response.state = "done";
        response.body = std::move(json);
      }
      break;
    }
    case Verb::kCancel:
      status = cancel(request.job_id);
      if (status.ok()) {
        response.job_id = request.job_id;
        response.state = "cancelled";
      }
      break;
    case Verb::kStats:
      response.body = stats_json();
      break;
    case Verb::kShutdown:
      // Drain before answering: an OK here means every accepted job has
      // settled (kCancelled for jobs a drain timeout cut off) and its
      // result is queryable.
      shutdown(impl_->config.drain_timeout_ms);
      response.state = "drained";
      break;
  }
  if (status.ok()) {
    response.ok = true;
  } else {
    response.ok = false;
    response.code = status.code();
    response.body = status.message();
  }
  return response;
}

void Server::handle_frame(const u8* data, size_t size, std::vector<u8>& response_payload_out) {
  // Frame-level chaos: keyed by the frame ordinal, applied before the
  // parser ever sees the bytes. Truncation parses a prefix; corruption
  // flips one bit of a local copy — the caller's buffer is never
  // touched. Both must surface as ERR responses, never a crash or a
  // dropped connection (the parser fuzz suite holds that line).
  const u64 ordinal = impl_->frame_seq.fetch_add(1, std::memory_order_relaxed);
  std::vector<u8> mutated;
  u64 pick = 0;
  if (impl_->faults.roll(fault::FaultSite::kServeFrameTruncate, ordinal, &pick) && size > 0)
    size = pick % size;
  if (impl_->faults.roll(fault::FaultSite::kServeFrameCorrupt, ordinal, &pick) && size > 0) {
    mutated.assign(data, data + size);
    mutated[pick % size] ^= static_cast<u8>(1u << ((pick >> 32) % 8));
    data = mutated.data();
  }
  Request request;
  Response response;
  if (Status status = parse_request(data, size, request); !status.ok()) {
    response.ok = false;
    response.code = status.code();
    response.body = status.message();
  } else {
    response = handle_request(request);
  }
  response_payload_out.clear();
  encode_response(response, response_payload_out);
}

}  // namespace haccrg::serve
