// Structured race reports for the serving path. The JSON is built from
// the replay result's canonical race identity set (sorted RaceKeys), so
// two replays of the same trace produce byte-identical reports — in
// particular across shard worker counts, which is what lets the server
// memoize results and the isolation tests compare bytes.
//
// Races are grouped for reporting by (pc, space, class) where class is
// the (race type, detection mechanism) pair: one group per distinct
// program location and failure mode, with an occurrence count and the
// first (lowest-key) occurrence spelled out. The full identity count is
// kept per group; raw un-deduplicated totals are omitted on purpose —
// they are detector-internal and not stable under sharding.
#pragma once

#include <string>

#include "trace/replay.hpp"

namespace haccrg::serve {

/// Render `result` (which must be ok) as the service's report JSON.
std::string build_report_json(const trace::ReplayResult& result);

/// Minimal JSON string escaping (quotes, backslash, control bytes).
std::string json_escape(const std::string& text);

}  // namespace haccrg::serve
