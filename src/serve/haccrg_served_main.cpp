// haccrg-served — the sharded trace-replay detection service daemon.
//
//   haccrg-served serve --socket PATH [--workers N] [--queue N]
//                       [--deadline-ms N] [--drain-timeout MS] [--faults PLAN]
//   haccrg-served serve --stdio [...same flags]
//   haccrg-served once --trace FILE [--workers N] [--kernel N] [--deadline-ms N]
//   haccrg-served client --socket PATH submit FILE [--workers N] [--kernel N]
//                        [--deadline-ms N] [--retries N]
//   haccrg-served client --socket PATH status|result|cancel JOB [--wait]
//   haccrg-served client --socket PATH stats|shutdown
//
// Transport is length-prefixed frames (serve/protocol.hpp) over a unix
// domain socket or stdin/stdout. `once` runs a single job through an
// in-process server — no socket, same code path — and prints the report
// JSON; it is the smoke-test entry point. `client submit` retries
// kUnavailable rejections with the serve/client.hpp backoff loop.
//
// Exit codes: 0 success, 1 job/request failed (message on stderr),
// 2 usage, 3 transport/io error.
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace haccrg;
using namespace haccrg::serve;

int usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "haccrg-served: %s\n\n", error);
  std::fprintf(stderr, "%s",
               "usage: haccrg-served <command> [args]\n"
               "\n"
               "commands:\n"
               "  serve --socket PATH | --stdio   run the daemon\n"
               "    [--workers N]                 worker threads (default 2)\n"
               "    [--queue N]                   queued-job bound (default 64)\n"
               "    [--deadline-ms N]             default per-job deadline (0 = none)\n"
               "    [--drain-timeout MS]          SHUTDOWN drain budget; queued jobs\n"
               "                                  past it are cancelled (default: full drain)\n"
               "    [--faults PLAN]               serving chaos plan (serve_* keys,\n"
               "                                  HACCRG_FAULTS syntax)\n"
               "  once --trace FILE               one in-process job, report on stdout\n"
               "    [--workers N] [--kernel N] [--deadline-ms N]\n"
               "  client --socket PATH <verb>     one request against a daemon\n"
               "    submit FILE [--workers N] [--kernel N] [--deadline-ms N] [--retries N]\n"
               "    status JOB | result JOB [--wait] | cancel JOB\n"
               "    stats | shutdown\n");
  return 2;
}

bool read_file(const std::string& path, std::vector<u8>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

// --- Frame transport over a file descriptor --------------------------------

bool read_exact(int fd, u8* buffer, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, buffer + done, size - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool write_all(int fd, const u8* buffer, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, buffer + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// Read one frame; false on clean EOF or any error (`eof` says which).
bool read_frame(int fd, std::vector<u8>& payload, bool& eof) {
  u8 prefix[4];
  eof = false;
  {
    // A clean close between frames shows up as EOF on the first byte.
    const ssize_t n = ::read(fd, prefix, 1);
    if (n == 0) {
      eof = true;
      return false;
    }
    if (n < 0) return false;
  }
  if (!read_exact(fd, prefix + 1, 3)) return false;
  const u64 size = static_cast<u64>(prefix[0]) | static_cast<u64>(prefix[1]) << 8 |
                   static_cast<u64>(prefix[2]) << 16 | static_cast<u64>(prefix[3]) << 24;
  if (size == 0 || size > kMaxFramePayload) return false;
  payload.resize(size);
  return read_exact(fd, payload.data(), size);
}

bool write_frame(int fd, const std::vector<u8>& payload) {
  std::vector<u8> framed;
  framed.reserve(payload.size() + 4);
  encode_frame(payload, framed);
  return write_all(fd, framed.data(), framed.size());
}

// --- serve ------------------------------------------------------------------

/// Serve one connection; returns true when a SHUTDOWN was processed.
/// A client that dies mid-frame or mid-reply only ends this connection
/// — read_frame fails, write_frame sees EPIPE (SIGPIPE is ignored
/// process-wide), and the accept loop moves on with every accepted job
/// still owned by the server.
bool serve_connection(Server& server, int in_fd, int out_fd) {
  std::vector<u8> payload;
  std::vector<u8> reply;
  bool eof = false;
  while (read_frame(in_fd, payload, eof)) {
    Request request;
    Response response;
    bool is_shutdown = false;
    if (Status status = parse_request(payload.data(), payload.size(), request); !status.ok()) {
      response.ok = false;
      response.code = status.code();
      response.body = status.message();
    } else {
      is_shutdown = request.verb == Verb::kShutdown;
      response = server.handle_request(request);
    }
    reply.clear();
    encode_response(response, reply);
    if (!write_frame(out_fd, reply)) return is_shutdown && response.ok;
    if (is_shutdown && response.ok) return true;
  }
  return false;
}

int cmd_serve_stdio(Server& server) {
  serve_connection(server, STDIN_FILENO, STDOUT_FILENO);
  server.shutdown();  // EOF on stdin drains too
  return 0;
}

int cmd_serve_socket(Server& server, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "haccrg-served: socket: %s\n", std::strerror(errno));
    return 3;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "haccrg-served: socket path too long\n");
    ::close(listener);
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 16) < 0) {
    std::fprintf(stderr, "haccrg-served: bind/listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listener);
    return 3;
  }
  std::fprintf(stderr, "haccrg-served: listening on %s\n", path.c_str());

  // Connections are served one at a time: the daemon's concurrency lives
  // in the worker pool (jobs are asynchronous), not in the accept loop,
  // which keeps the transport free of connection/shutdown races.
  bool shutdown_seen = false;
  while (!shutdown_seen) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "haccrg-served: accept: %s\n", std::strerror(errno));
      break;
    }
    shutdown_seen = serve_connection(server, conn, conn);
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  server.shutdown();
  return 0;
}

// --- once -------------------------------------------------------------------

int cmd_once(int argc, char** argv) {
  std::string trace_path;
  u32 workers = 1;
  i64 kernel = -1;
  u32 deadline_ms = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) trace_path = argv[++i];
    else if (arg == "--workers" && i + 1 < argc) workers = static_cast<u32>(std::atoi(argv[++i]));
    else if (arg == "--kernel" && i + 1 < argc) kernel = std::atol(argv[++i]);
    else if (arg == "--deadline-ms" && i + 1 < argc)
      deadline_ms = static_cast<u32>(std::atoi(argv[++i]));
    else return usage(("unknown once argument: " + arg).c_str());
  }
  if (trace_path.empty()) return usage("once requires --trace");
  std::vector<u8> bytes;
  if (!read_file(trace_path, bytes)) {
    std::fprintf(stderr, "haccrg-served: cannot read %s\n", trace_path.c_str());
    return 3;
  }
  ServerConfig config;
  config.workers = 1;
  Server server(config);
  Client client = Client::in_process(server);
  u64 job = 0;
  if (Status status = client.submit(bytes, workers, kernel, deadline_ms, job); !status.ok()) {
    std::fprintf(stderr, "haccrg-served: %s\n", status.to_string().c_str());
    return 1;
  }
  std::string report;
  if (Status status = client.result(job, /*wait=*/true, report); !status.ok()) {
    std::fprintf(stderr, "haccrg-served: %s\n", status.to_string().c_str());
    return 1;
  }
  std::fputs(report.c_str(), stdout);
  return 0;
}

// --- client -----------------------------------------------------------------

int client_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Hidden test hook (tests/test_serve_cli.sh): start a SUBMIT frame,
/// write only half of it, and vanish — a client death mid-body. The
/// daemon must stay healthy.
int cmd_abort_mid_submit(const std::string& socket_path, const std::string& trace_path) {
  std::vector<u8> bytes;
  if (!read_file(trace_path, bytes)) return 3;
  Request request;
  request.verb = Verb::kSubmit;
  request.trace = std::move(bytes);
  std::vector<u8> payload;
  encode_request(request, payload);
  std::vector<u8> framed;
  encode_frame(payload, framed);
  const int fd = client_connect(socket_path);
  if (fd < 0) return 3;
  write_all(fd, framed.data(), framed.size() / 2);
  ::close(fd);
  return 0;
}

/// Hidden test hook: send RESULT wait=1 and close without ever reading
/// the reply — the daemon's write lands on a dead socket (EPIPE, not a
/// fatal SIGPIPE) after the job settles.
int cmd_abort_mid_result(const std::string& socket_path, u64 job_id) {
  Request request;
  request.verb = Verb::kResult;
  request.job_id = job_id;
  request.wait = true;
  std::vector<u8> payload;
  encode_request(request, payload);
  const int fd = client_connect(socket_path);
  if (fd < 0) return 3;
  if (!write_frame(fd, payload)) {
    ::close(fd);
    return 3;
  }
  ::close(fd);
  return 0;
}

int cmd_client(int argc, char** argv) {
  std::string socket_path;
  std::vector<std::string> rest;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) socket_path = argv[++i];
    else rest.push_back(arg);
  }
  if (socket_path.empty() || rest.empty()) return usage("client requires --socket and a verb");

  const std::string& verb = rest[0];
  if (verb == "abort-mid-submit") {
    if (rest.size() < 2) return usage("abort-mid-submit requires a trace file");
    return cmd_abort_mid_submit(socket_path, rest[1]);
  }
  if (verb == "abort-mid-result") {
    if (rest.size() < 2) return usage("abort-mid-result requires a job id");
    return cmd_abort_mid_result(socket_path, static_cast<u64>(std::atoll(rest[1].c_str())));
  }

  Request request;
  u32 deadline_ms = 0;
  ClientConfig client_config;
  if (verb == "submit") {
    if (rest.size() < 2) return usage("client submit requires a trace file");
    request.verb = Verb::kSubmit;
    if (!read_file(rest[1], request.trace)) {
      std::fprintf(stderr, "haccrg-served: cannot read %s\n", rest[1].c_str());
      return 3;
    }
    for (size_t i = 2; i < rest.size(); ++i) {
      if (rest[i] == "--workers" && i + 1 < rest.size())
        request.workers = static_cast<u32>(std::atoi(rest[++i].c_str()));
      else if (rest[i] == "--kernel" && i + 1 < rest.size())
        request.kernel = std::atol(rest[++i].c_str());
      else if (rest[i] == "--deadline-ms" && i + 1 < rest.size())
        deadline_ms = static_cast<u32>(std::atoi(rest[++i].c_str()));
      else if (rest[i] == "--retries" && i + 1 < rest.size())
        client_config.max_attempts = static_cast<u32>(std::atoi(rest[++i].c_str())) + 1;
      else return usage(("unknown submit argument: " + rest[i]).c_str());
    }
  } else if (verb == "status" || verb == "result" || verb == "cancel") {
    if (rest.size() < 2) return usage("client needs a job id");
    request.verb = verb == "status" ? Verb::kStatus
                   : verb == "result" ? Verb::kResult
                                      : Verb::kCancel;
    request.job_id = static_cast<u64>(std::atoll(rest[1].c_str()));
    if (rest.size() > 2 && rest[2] == "--wait" && verb == "result") request.wait = true;
  } else if (verb == "stats") {
    request.verb = Verb::kStats;
  } else if (verb == "shutdown") {
    request.verb = Verb::kShutdown;
  } else {
    return usage(("unknown client verb: " + verb).c_str());
  }

  const int fd = client_connect(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "haccrg-served: cannot connect to %s\n", socket_path.c_str());
    return 3;
  }
  // One connection, many frames: the retry loop (submit only — every
  // other verb is a single round trip) re-sends over the same socket.
  bool transport_dead = false;
  Client client(
      [fd, &transport_dead](const Request& req, Response& response) -> Status {
        std::vector<u8> payload;
        encode_request(req, payload);
        std::vector<u8> reply;
        bool eof = false;
        if (!write_frame(fd, payload) || !read_frame(fd, reply, eof)) {
          transport_dead = true;
          return Status::io_error("serve: transport failure");
        }
        return parse_response(reply.data(), reply.size(), response);
      },
      client_config);

  Status status;
  Response shown;  // what to print on success
  if (request.verb == Verb::kSubmit) {
    u64 job = 0;
    status = client.submit(request.trace, request.workers, request.kernel, deadline_ms, job);
    shown.job_id = job;
    shown.state = "queued";
  } else if (request.verb == Verb::kStatus) {
    JobInfo info;
    status = client.status(request.job_id, info);
    shown.job_id = info.id;
    shown.state = std::string(job_state_name(info.state));
    shown.body = info.error;
  } else if (request.verb == Verb::kResult) {
    status = client.result(request.job_id, request.wait, shown.body);
    shown.job_id = request.job_id;
    shown.state = "done";
  } else if (request.verb == Verb::kCancel) {
    status = client.cancel(request.job_id);
    shown.job_id = request.job_id;
    shown.state = "cancelled";
  } else if (request.verb == Verb::kStats) {
    status = client.stats(shown.body);
  } else {
    status = client.shutdown();
    shown.state = "drained";
  }
  ::close(fd);

  if (!status.ok()) {
    if (transport_dead || status.code() == StatusCode::kIoError) {
      std::fprintf(stderr, "haccrg-served: transport failure\n");
      return 3;
    }
    std::fprintf(stderr, "haccrg-served: %s: %s\n",
                 std::string(status_code_name(status.code())).c_str(),
                 status.message().c_str());
    return 1;
  }
  if (shown.job_id != 0) std::printf("job: %llu\n", (unsigned long long)shown.job_id);
  if (!shown.state.empty()) std::printf("state: %s\n", shown.state.c_str());
  if (!shown.body.empty()) std::fputs(shown.body.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client may disconnect while the daemon is mid-write (the
  // abort-mid-result hook does exactly that); the write must fail with
  // EPIPE, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "serve") {
    std::string socket_path;
    bool stdio = false;
    ServerConfig config;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--socket" && i + 1 < argc) socket_path = argv[++i];
      else if (arg == "--stdio") stdio = true;
      else if (arg == "--workers" && i + 1 < argc)
        config.workers = static_cast<u32>(std::atoi(argv[++i]));
      else if (arg == "--queue" && i + 1 < argc)
        config.max_queue = static_cast<u32>(std::atoi(argv[++i]));
      else if (arg == "--deadline-ms" && i + 1 < argc)
        config.default_deadline_ms = static_cast<u32>(std::atoi(argv[++i]));
      else if (arg == "--drain-timeout" && i + 1 < argc)
        config.drain_timeout_ms = std::atoll(argv[++i]);
      else if (arg == "--faults" && i + 1 < argc) {
        if (Status status = fault::FaultPlan::parse(argv[++i], config.faults); !status.ok()) {
          std::fprintf(stderr, "haccrg-served: %s\n", status.to_string().c_str());
          return 2;
        }
      }
      else return usage(("unknown serve argument: " + arg).c_str());
    }
    if (stdio == !socket_path.empty())
      return usage("serve needs exactly one of --socket/--stdio");
    Server server(config);
    return stdio ? cmd_serve_stdio(server) : cmd_serve_socket(server, socket_path);
  }
  if (command == "once") return cmd_once(argc - 2, argv + 2);
  if (command == "client") return cmd_client(argc - 2, argv + 2);
  return usage(("unknown command: " + command).c_str());
}
