// haccrg-served — the sharded trace-replay detection service daemon.
//
//   haccrg-served serve --socket PATH [--workers N] [--queue N]
//   haccrg-served serve --stdio [--workers N] [--queue N]
//   haccrg-served once --trace FILE [--workers N] [--kernel N]
//   haccrg-served client --socket PATH submit FILE [--workers N] [--kernel N]
//   haccrg-served client --socket PATH status|result|cancel JOB [--wait]
//   haccrg-served client --socket PATH stats|shutdown
//
// Transport is length-prefixed frames (serve/protocol.hpp) over a unix
// domain socket or stdin/stdout. `once` runs a single job through an
// in-process server — no socket, same code path — and prints the report
// JSON; it is the smoke-test entry point.
//
// Exit codes: 0 success, 1 job/request failed (message on stderr),
// 2 usage, 3 transport/io error.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace haccrg;
using namespace haccrg::serve;

int usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "haccrg-served: %s\n\n", error);
  std::fprintf(stderr, "%s",
               "usage: haccrg-served <command> [args]\n"
               "\n"
               "commands:\n"
               "  serve --socket PATH | --stdio   run the daemon\n"
               "    [--workers N]                 worker threads (default 2)\n"
               "    [--queue N]                   queued-job bound (default 64)\n"
               "  once --trace FILE               one in-process job, report on stdout\n"
               "    [--workers N] [--kernel N]\n"
               "  client --socket PATH <verb>     one request against a daemon\n"
               "    submit FILE [--workers N] [--kernel N]\n"
               "    status JOB | result JOB [--wait] | cancel JOB\n"
               "    stats | shutdown\n");
  return 2;
}

bool read_file(const std::string& path, std::vector<u8>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

// --- Frame transport over a file descriptor --------------------------------

bool read_exact(int fd, u8* buffer, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, buffer + done, size - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool write_all(int fd, const u8* buffer, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, buffer + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// Read one frame; false on clean EOF or any error (`eof` says which).
bool read_frame(int fd, std::vector<u8>& payload, bool& eof) {
  u8 prefix[4];
  eof = false;
  {
    // A clean close between frames shows up as EOF on the first byte.
    const ssize_t n = ::read(fd, prefix, 1);
    if (n == 0) {
      eof = true;
      return false;
    }
    if (n < 0) return false;
  }
  if (!read_exact(fd, prefix + 1, 3)) return false;
  const u64 size = static_cast<u64>(prefix[0]) | static_cast<u64>(prefix[1]) << 8 |
                   static_cast<u64>(prefix[2]) << 16 | static_cast<u64>(prefix[3]) << 24;
  if (size == 0 || size > kMaxFramePayload) return false;
  payload.resize(size);
  return read_exact(fd, payload.data(), size);
}

bool write_frame(int fd, const std::vector<u8>& payload) {
  std::vector<u8> framed;
  framed.reserve(payload.size() + 4);
  encode_frame(payload, framed);
  return write_all(fd, framed.data(), framed.size());
}

// --- serve ------------------------------------------------------------------

/// Serve one connection; returns true when a SHUTDOWN was processed.
bool serve_connection(Server& server, int in_fd, int out_fd) {
  std::vector<u8> payload;
  std::vector<u8> reply;
  bool eof = false;
  while (read_frame(in_fd, payload, eof)) {
    Request request;
    Response response;
    bool is_shutdown = false;
    if (Status status = parse_request(payload.data(), payload.size(), request); !status.ok()) {
      response.ok = false;
      response.code = status.code();
      response.body = status.message();
    } else {
      is_shutdown = request.verb == Verb::kShutdown;
      response = server.handle_request(request);
    }
    reply.clear();
    encode_response(response, reply);
    if (!write_frame(out_fd, reply)) return false;
    if (is_shutdown && response.ok) return true;
  }
  return false;
}

int cmd_serve_stdio(Server& server) {
  serve_connection(server, STDIN_FILENO, STDOUT_FILENO);
  server.shutdown();  // EOF on stdin drains too
  return 0;
}

int cmd_serve_socket(Server& server, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "haccrg-served: socket: %s\n", std::strerror(errno));
    return 3;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "haccrg-served: socket path too long\n");
    ::close(listener);
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 16) < 0) {
    std::fprintf(stderr, "haccrg-served: bind/listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listener);
    return 3;
  }
  std::fprintf(stderr, "haccrg-served: listening on %s\n", path.c_str());

  // Connections are served one at a time: the daemon's concurrency lives
  // in the worker pool (jobs are asynchronous), not in the accept loop,
  // which keeps the transport free of connection/shutdown races.
  bool shutdown_seen = false;
  while (!shutdown_seen) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "haccrg-served: accept: %s\n", std::strerror(errno));
      break;
    }
    shutdown_seen = serve_connection(server, conn, conn);
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  server.shutdown();
  return 0;
}

// --- once -------------------------------------------------------------------

int cmd_once(int argc, char** argv) {
  std::string trace_path;
  u32 workers = 1;
  i64 kernel = -1;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) trace_path = argv[++i];
    else if (arg == "--workers" && i + 1 < argc) workers = static_cast<u32>(std::atoi(argv[++i]));
    else if (arg == "--kernel" && i + 1 < argc) kernel = std::atol(argv[++i]);
    else return usage(("unknown once argument: " + arg).c_str());
  }
  if (trace_path.empty()) return usage("once requires --trace");
  std::vector<u8> bytes;
  if (!read_file(trace_path, bytes)) {
    std::fprintf(stderr, "haccrg-served: cannot read %s\n", trace_path.c_str());
    return 3;
  }
  ServerConfig config;
  config.workers = 1;
  Server server(config);
  u64 job = 0;
  if (Status status = server.submit(bytes, workers, kernel, job); !status.ok()) {
    std::fprintf(stderr, "haccrg-served: %s\n", status.to_string().c_str());
    return 1;
  }
  std::string report;
  if (Status status = server.result(job, /*wait=*/true, report); !status.ok()) {
    std::fprintf(stderr, "haccrg-served: %s\n", status.to_string().c_str());
    return 1;
  }
  std::fputs(report.c_str(), stdout);
  return 0;
}

// --- client -----------------------------------------------------------------

int client_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int cmd_client(int argc, char** argv) {
  std::string socket_path;
  std::vector<std::string> rest;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) socket_path = argv[++i];
    else rest.push_back(arg);
  }
  if (socket_path.empty() || rest.empty()) return usage("client requires --socket and a verb");

  Request request;
  const std::string& verb = rest[0];
  if (verb == "submit") {
    if (rest.size() < 2) return usage("client submit requires a trace file");
    request.verb = Verb::kSubmit;
    if (!read_file(rest[1], request.trace)) {
      std::fprintf(stderr, "haccrg-served: cannot read %s\n", rest[1].c_str());
      return 3;
    }
    for (size_t i = 2; i < rest.size(); ++i) {
      if (rest[i] == "--workers" && i + 1 < rest.size())
        request.workers = static_cast<u32>(std::atoi(rest[++i].c_str()));
      else if (rest[i] == "--kernel" && i + 1 < rest.size())
        request.kernel = std::atol(rest[++i].c_str());
      else return usage(("unknown submit argument: " + rest[i]).c_str());
    }
  } else if (verb == "status" || verb == "result" || verb == "cancel") {
    if (rest.size() < 2) return usage("client needs a job id");
    request.verb = verb == "status" ? Verb::kStatus
                   : verb == "result" ? Verb::kResult
                                      : Verb::kCancel;
    request.job_id = static_cast<u64>(std::atoll(rest[1].c_str()));
    if (rest.size() > 2 && rest[2] == "--wait" && verb == "result") request.wait = true;
  } else if (verb == "stats") {
    request.verb = Verb::kStats;
  } else if (verb == "shutdown") {
    request.verb = Verb::kShutdown;
  } else {
    return usage(("unknown client verb: " + verb).c_str());
  }

  const int fd = client_connect(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "haccrg-served: cannot connect to %s\n", socket_path.c_str());
    return 3;
  }
  std::vector<u8> payload;
  encode_request(request, payload);
  std::vector<u8> reply;
  bool eof = false;
  if (!write_frame(fd, payload) || !read_frame(fd, reply, eof)) {
    std::fprintf(stderr, "haccrg-served: transport failure\n");
    ::close(fd);
    return 3;
  }
  ::close(fd);

  Response response;
  if (Status status = parse_response(reply.data(), reply.size(), response); !status.ok()) {
    std::fprintf(stderr, "haccrg-served: bad response: %s\n", status.to_string().c_str());
    return 3;
  }
  if (!response.ok) {
    std::fprintf(stderr, "haccrg-served: %s: %s\n",
                 std::string(status_code_name(response.code)).c_str(), response.body.c_str());
    return 1;
  }
  if (response.job_id != 0) std::printf("job: %llu\n", (unsigned long long)response.job_id);
  if (!response.state.empty()) std::printf("state: %s\n", response.state.c_str());
  if (!response.body.empty()) std::fputs(response.body.c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "serve") {
    std::string socket_path;
    bool stdio = false;
    ServerConfig config;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--socket" && i + 1 < argc) socket_path = argv[++i];
      else if (arg == "--stdio") stdio = true;
      else if (arg == "--workers" && i + 1 < argc)
        config.workers = static_cast<u32>(std::atoi(argv[++i]));
      else if (arg == "--queue" && i + 1 < argc)
        config.max_queue = static_cast<u32>(std::atoi(argv[++i]));
      else return usage(("unknown serve argument: " + arg).c_str());
    }
    if (stdio == !socket_path.empty())
      return usage("serve needs exactly one of --socket/--stdio");
    Server server(config);
    return stdio ? cmd_serve_stdio(server) : cmd_serve_socket(server, socket_path);
  }
  if (command == "once") return cmd_once(argc - 2, argv + 2);
  if (command == "client") return cmd_client(argc - 2, argv + 2);
  return usage(("unknown command: " + command).c_str());
}
