// Wire protocol of the trace-replay detection service (haccrg-served).
//
// Transport framing: each message is a length-prefixed frame —
//
//   u32 LE payload length | payload bytes
//
// capped at kMaxFramePayload. The payload is a text head followed by an
// optional binary body:
//
//   <VERB>\n
//   <key>: <value>\n     (zero or more, each key at most once)
//   \n
//   <body: every remaining byte>
//
// Requests carry one of the verbs below; SUBMIT's body is a complete
// trace file image (trace/format.hpp, v1 or v2). Responses reuse the
// same head/body shape with verb "OK" or "ERR"; an ERR head carries a
// `code` field naming the StatusCode and its body is the message.
//
// Both parsers are Status-returning and leave the out-parameter
// untouched on failure — malformed and truncated frames are expected
// input (see tests/test_parser_fuzz.cpp), never a crash.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace haccrg::serve {

/// Frames above this are rejected before any parsing (a length prefix
/// is attacker-controlled input; the bound keeps allocation sane).
inline constexpr u64 kMaxFramePayload = u64{64} << 20;  // 64 MiB

/// Request verbs — the job lifecycle plus daemon introspection.
enum class Verb : u8 {
  kSubmit,    ///< enqueue a replay job; body = trace bytes
  kStatus,    ///< query one job's state
  kResult,    ///< fetch a finished job's report (wait=1 blocks)
  kCancel,    ///< cancel a still-queued job
  kStats,     ///< service counters as JSON
  kShutdown,  ///< drain the queue and stop
};

std::string_view verb_name(Verb verb);

struct Request {
  Verb verb = Verb::kStats;
  u64 job_id = 0;       ///< STATUS / RESULT / CANCEL (key "job")
  u32 workers = 1;      ///< SUBMIT: shard worker count (key "workers", 1..64)
  i64 kernel = -1;      ///< SUBMIT: replay only kernel #n via the trace
                        ///< index; -1 = whole trace (key "kernel")
  u32 deadline_ms = 0;  ///< SUBMIT: per-job deadline in milliseconds; 0 =
                        ///< the server's default (key "deadline_ms",
                        ///< 1..86400000)
  bool wait = false;    ///< RESULT: block until the job finishes (key "wait")
  std::vector<u8> trace;  ///< SUBMIT body
};

struct Response {
  bool ok = false;
  StatusCode code = StatusCode::kOk;  ///< ERR only
  u64 job_id = 0;
  std::string state;   ///< job state name, when one applies
  std::string body;    ///< report/stats JSON, or the ERR message
};

/// Serialize a request/response into a frame payload (no length prefix).
void encode_request(const Request& request, std::vector<u8>& out);
void encode_response(const Response& response, std::vector<u8>& out);

/// Wrap a payload with the u32 LE length prefix.
void encode_frame(const std::vector<u8>& payload, std::vector<u8>& out);

/// Parse a frame payload. On any failure the out-parameter is untouched
/// and the Status explains where parsing stopped.
Status parse_request(const u8* data, size_t size, Request& out);
Status parse_response(const u8* data, size_t size, Response& out);

}  // namespace haccrg::serve
