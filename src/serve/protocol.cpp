#include "serve/protocol.hpp"

#include <cstdio>

namespace haccrg::serve {

namespace {

/// A parsed text head: verb line plus key/value fields, with the body
/// range. Shared by the request and response parsers.
struct Head {
  std::string_view verb;
  std::vector<std::pair<std::string_view, std::string_view>> fields;
  const u8* body = nullptr;
  size_t body_size = 0;
};

bool printable_line(std::string_view line) {
  for (char c : line)
    if (static_cast<unsigned char>(c) < 0x20 || static_cast<unsigned char>(c) == 0x7f)
      return false;
  return true;
}

Status parse_head(const u8* data, size_t size, Head& out) {
  if (data == nullptr || size == 0) return Status::corrupt("serve: empty frame");
  if (size > kMaxFramePayload) return Status::corrupt("serve: frame exceeds the payload cap");
  Head head;
  const char* text = reinterpret_cast<const char*>(data);
  size_t pos = 0;
  bool saw_blank = false;
  for (int line_no = 0; pos <= size; ++line_no) {
    size_t eol = pos;
    while (eol < size && text[eol] != '\n') ++eol;
    if (eol == size && !saw_blank)
      return Status::corrupt("serve: frame head not terminated by a blank line");
    const std::string_view line(text + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      if (line_no == 0) return Status::corrupt("serve: missing verb line");
      saw_blank = true;
      break;
    }
    if (!printable_line(line)) return Status::corrupt("serve: control bytes in frame head");
    if (line_no == 0) {
      head.verb = line;
      continue;
    }
    const size_t colon = line.find(": ");
    if (colon == std::string_view::npos || colon == 0)
      return Status::corrupt("serve: malformed header field (want 'key: value')");
    const std::string_view key = line.substr(0, colon);
    for (const auto& [seen, value] : head.fields)
      if (seen == key) return Status::corrupt("serve: duplicate header field");
    head.fields.emplace_back(key, line.substr(colon + 2));
    if (head.fields.size() > 16) return Status::corrupt("serve: too many header fields");
  }
  head.body = data + pos;
  head.body_size = size - pos;
  out = head;
  return Status();
}

/// Strict decimal parse — no sign, no blanks, no overflow past `max`.
bool parse_u64(std::string_view text, u64 max, u64& out) {
  if (text.empty() || text.size() > 20) return false;
  u64 value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > max / 10) return false;
    value = value * 10 + static_cast<u64>(c - '0');
    if (value > max) return false;
  }
  out = value;
  return true;
}

void append(std::vector<u8>& out, std::string_view text) {
  out.insert(out.end(), text.begin(), text.end());
}

void append_field(std::vector<u8>& out, std::string_view key, const std::string& value) {
  append(out, key);
  append(out, ": ");
  append(out, value);
  append(out, "\n");
}

}  // namespace

std::string_view verb_name(Verb verb) {
  switch (verb) {
    case Verb::kSubmit: return "SUBMIT";
    case Verb::kStatus: return "STATUS";
    case Verb::kResult: return "RESULT";
    case Verb::kCancel: return "CANCEL";
    case Verb::kStats: return "STATS";
    case Verb::kShutdown: return "SHUTDOWN";
  }
  return "?";
}

void encode_request(const Request& request, std::vector<u8>& out) {
  append(out, verb_name(request.verb));
  append(out, "\n");
  switch (request.verb) {
    case Verb::kSubmit:
      if (request.workers != 1) append_field(out, "workers", std::to_string(request.workers));
      if (request.kernel >= 0) append_field(out, "kernel", std::to_string(request.kernel));
      if (request.deadline_ms != 0)
        append_field(out, "deadline_ms", std::to_string(request.deadline_ms));
      break;
    case Verb::kResult:
      if (request.wait) append_field(out, "wait", "1");
      [[fallthrough]];
    case Verb::kStatus:
    case Verb::kCancel:
      append_field(out, "job", std::to_string(request.job_id));
      break;
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  append(out, "\n");
  if (request.verb == Verb::kSubmit)
    out.insert(out.end(), request.trace.begin(), request.trace.end());
}

void encode_response(const Response& response, std::vector<u8>& out) {
  append(out, response.ok ? "OK" : "ERR");
  append(out, "\n");
  if (!response.ok) append_field(out, "code", std::string(status_code_name(response.code)));
  if (response.job_id != 0) append_field(out, "job", std::to_string(response.job_id));
  if (!response.state.empty()) append_field(out, "state", response.state);
  append(out, "\n");
  append(out, response.body);
}

void encode_frame(const std::vector<u8>& payload, std::vector<u8>& out) {
  const u32 size = static_cast<u32>(payload.size());
  out.push_back(static_cast<u8>(size & 0xff));
  out.push_back(static_cast<u8>((size >> 8) & 0xff));
  out.push_back(static_cast<u8>((size >> 16) & 0xff));
  out.push_back(static_cast<u8>((size >> 24) & 0xff));
  out.insert(out.end(), payload.begin(), payload.end());
}

Status parse_request(const u8* data, size_t size, Request& out) {
  Head head;
  if (Status status = parse_head(data, size, head); !status.ok()) return status;

  Request request;
  if (head.verb == "SUBMIT") request.verb = Verb::kSubmit;
  else if (head.verb == "STATUS") request.verb = Verb::kStatus;
  else if (head.verb == "RESULT") request.verb = Verb::kResult;
  else if (head.verb == "CANCEL") request.verb = Verb::kCancel;
  else if (head.verb == "STATS") request.verb = Verb::kStats;
  else if (head.verb == "SHUTDOWN") request.verb = Verb::kShutdown;
  else return Status::corrupt("serve: unknown verb");

  bool saw_job = false;
  for (const auto& [key, value] : head.fields) {
    u64 number = 0;
    if (key == "workers" && request.verb == Verb::kSubmit) {
      if (!parse_u64(value, 64, number) || number == 0)
        return Status::invalid_argument("serve: workers must be 1..64");
      request.workers = static_cast<u32>(number);
    } else if (key == "kernel" && request.verb == Verb::kSubmit) {
      if (!parse_u64(value, u64{1} << 20, number))
        return Status::invalid_argument("serve: bad kernel number");
      request.kernel = static_cast<i64>(number);
    } else if (key == "deadline_ms" && request.verb == Verb::kSubmit) {
      // A day bounds the field: deadlines exist to stop runaway jobs,
      // and 0 (= server default) may not be spelled explicitly.
      if (!parse_u64(value, 86'400'000, number) || number == 0)
        return Status::invalid_argument("serve: deadline_ms must be 1..86400000");
      request.deadline_ms = static_cast<u32>(number);
    } else if (key == "job" && (request.verb == Verb::kStatus || request.verb == Verb::kResult ||
                                request.verb == Verb::kCancel)) {
      if (!parse_u64(value, ~u64{0} >> 1, number) || number == 0)
        return Status::invalid_argument("serve: bad job id");
      request.job_id = number;
      saw_job = true;
    } else if (key == "wait" && request.verb == Verb::kResult) {
      if (value != "0" && value != "1") return Status::invalid_argument("serve: wait must be 0/1");
      request.wait = value == "1";
    } else {
      return Status::corrupt("serve: unexpected header field for this verb");
    }
  }

  if (request.verb == Verb::kSubmit) {
    if (head.body_size == 0) return Status::invalid_argument("serve: SUBMIT without trace body");
    request.trace.assign(head.body, head.body + head.body_size);
  } else {
    if (head.body_size != 0) return Status::corrupt("serve: unexpected body");
    if ((request.verb == Verb::kStatus || request.verb == Verb::kResult ||
         request.verb == Verb::kCancel) &&
        !saw_job)
      return Status::invalid_argument("serve: missing job field");
  }
  out = std::move(request);
  return Status();
}

Status parse_response(const u8* data, size_t size, Response& out) {
  Head head;
  if (Status status = parse_head(data, size, head); !status.ok()) return status;
  Response response;
  if (head.verb == "OK") response.ok = true;
  else if (head.verb == "ERR") response.ok = false;
  else return Status::corrupt("serve: response is neither OK nor ERR");

  for (const auto& [key, value] : head.fields) {
    if (key == "code" && !response.ok) {
      bool known = false;
      for (u8 c = 0; c <= static_cast<u8>(StatusCode::kDeadlineExceeded); ++c) {
        if (value == status_code_name(static_cast<StatusCode>(c))) {
          response.code = static_cast<StatusCode>(c);
          known = true;
          break;
        }
      }
      if (!known) return Status::corrupt("serve: unknown error code");
    } else if (key == "job") {
      u64 number = 0;
      if (!parse_u64(value, ~u64{0} >> 1, number))
        return Status::corrupt("serve: bad job id in response");
      response.job_id = number;
    } else if (key == "state") {
      response.state = std::string(value);
    } else {
      return Status::corrupt("serve: unexpected response field");
    }
  }
  response.body.assign(reinterpret_cast<const char*>(head.body), head.body_size);
  out = std::move(response);
  return Status();
}

}  // namespace haccrg::serve
