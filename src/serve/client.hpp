// Retrying client for the detection service. The daemon rejects
// overload instead of absorbing it (submit → kUnavailable when the
// queue is full), so every caller needs the same loop: retry with
// capped exponential backoff, jittered so a herd of rejected clients
// does not re-collide, bounded by an attempt count and a total time
// budget, and honest about terminal errors — a quarantined trace
// (kCorrupt) or a bad argument is surfaced immediately, never retried.
// This class is that loop, written once; haccrg-served's `once`/`client`
// commands and bench_serving/bench_chaos all drive it.
//
// The Client is transport-agnostic: it round-trips protocol Requests
// through a RequestFn. in_process() binds one to a Server through the
// frame layer (encode → handle_frame → parse), so in-process callers
// exercise the exact byte path — including the frame-level chaos sites
// — that socket clients do.
//
// Jitter is deterministic (SplitMix64 seeded from ClientConfig::seed):
// two clients with the same seed and the same rejection pattern back
// off identically, which is what makes the chaos campaign replayable.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace haccrg::serve {

/// Transport hook: send one request, receive its response. A non-OK
/// Status means the transport itself died (connection gone, frame
/// unparseable); service-level errors arrive as ERR responses.
using RequestFn = std::function<Status(const Request&, Response&)>;

struct ClientConfig {
  u32 max_attempts = 5;      ///< total tries per submit (1 = no retry)
  u32 base_backoff_ms = 10;  ///< first backoff; doubles per attempt
  u32 max_backoff_ms = 1000; ///< cap on a single backoff
  u32 retry_budget_ms = 10'000;  ///< total sleep allowed across retries
  u64 seed = 1;              ///< jitter seed — deterministic backoff
  /// Sleep hook, overridable so tests and the chaos campaign spend
  /// virtual rather than wall-clock time. Null = real sleep.
  std::function<void(u32)> sleep_ms;
};

class Client {
 public:
  explicit Client(RequestFn transport, const ClientConfig& config = {});

  /// A client bound to an in-process Server via the frame layer.
  static Client in_process(Server& server, const ClientConfig& config = {});

  /// SUBMIT with the retry loop: kUnavailable responses (queue full)
  /// are retried with capped exponential backoff + deterministic jitter
  /// until max_attempts or retry_budget_ms runs out — then the last
  /// kUnavailable is returned. Every other error is terminal and
  /// surfaced on the first attempt. `deadline_ms` 0 = server default.
  Status submit(const std::vector<u8>& trace, u32 workers, i64 kernel,
                u32 deadline_ms, u64& job_id_out);

  Status status(u64 job_id, JobInfo& out);

  /// Fetch a job's report; wait=true blocks server-side until the job
  /// settles. Terminal job states map to the Status the server chose
  /// (kDeadlineExceeded for a timeout, the failure code for kFailed).
  Status result(u64 job_id, bool wait, std::string& json_out);

  Status cancel(u64 job_id);
  Status stats(std::string& json_out);
  Status shutdown();

  /// Retry accounting (for STATS-style reporting by callers).
  u64 retries() const { return retries_; }
  u64 backoff_ms_total() const { return backoff_ms_total_; }

 private:
  Status roundtrip(const Request& request, Response& response);
  /// The next backoff for 0-based retry number `attempt`: doubled,
  /// capped, then jittered into [backoff/2, backoff].
  u32 next_backoff_ms(u32 attempt);

  RequestFn transport_;
  ClientConfig config_;
  SplitMix64 rng_;
  u64 retries_ = 0;
  u64 backoff_ms_total_ = 0;
};

}  // namespace haccrg::serve
