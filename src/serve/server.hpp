// The sharded trace-replay detection service. A Server owns a bounded
// job queue and a pool of worker threads; each worker carries its own
// pre-warmed ReplayArena (trace/replay.hpp) so steady-state jobs reuse
// detector state instead of rebuilding it. Traces are decoded once per
// distinct byte image (content-addressed cache) and, because sharded
// replay is deterministic and byte-identical across worker counts, the
// finished report for a (trace, kernel-slice) pair is memoized — a
// resubmitted trace is answered without replaying at all. Both the memo
// and the decode cache are LRU-bounded by max_memo_bytes.
//
// Overload is rejected, not absorbed: when `max_queue` jobs are already
// waiting, submit() returns StatusCode::kUnavailable and the caller is
// expected to retry (serve/client.hpp implements the backoff policy).
//
// Robustness contract: every accepted job reaches exactly one terminal
// state (kDone / kFailed / kCancelled / kTimedOut), and no worker-side
// failure — decode error, arena rebuild failure, injected fault, even a
// thrown exception — ever kills a worker thread; it becomes that job's
// kFailed. A deadline (per-SUBMIT or ServerConfig::default_deadline_ms)
// cancels the replay cooperatively at the next granule batch; a watchdog
// thread backstops stalled workers at deadline + grace, settling the job
// kTimedOut and recycling that worker's arena when its late result
// finally lands. A trace image whose jobs fail quarantine_threshold
// times is a poison pill: further submissions of the same bytes are
// rejected at submit time (kCorrupt) without queueing.
//
// ServerConfig::faults arms the serving-layer chaos sites
// (fault/fault.hpp, serve_* keys) — deterministic fault injection for
// bench_chaos; a zero-rate plan leaves every output byte-identical.
//
// The Server is transport-agnostic: handle_request() maps protocol
// requests to the methods below, and haccrg_served_main.cpp moves the
// frames over a unix socket or stdio.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fault/fault.hpp"
#include "serve/protocol.hpp"

namespace haccrg::serve {

struct ServerConfig {
  u32 workers = 2;       ///< worker threads draining the job queue
  u32 max_queue = 64;    ///< bound on queued (not yet running) jobs
  u64 max_trace_bytes = 32u << 20;  ///< largest accepted SUBMIT body
  bool memoize = true;   ///< reuse reports for identical (trace, slice) jobs
  u64 max_memo_bytes = 64u << 20;  ///< LRU byte bound, memo + decode cache
  u32 default_deadline_ms = 0;  ///< deadline for SUBMITs that carry none; 0 = none
  u32 deadline_grace_ms = 500;  ///< watchdog hard deadline = deadline + grace
  u32 watchdog_interval_ms = 20;  ///< watchdog poll period
  u32 quarantine_threshold = 3;   ///< job failures before a trace image is
                                  ///< poisoned; 0 disables quarantine
  u32 fault_stall_ms = 100;  ///< injected worker-stall duration (chaos only)
  i64 drain_timeout_ms = -1;  ///< SHUTDOWN drain budget; -1 = drain fully
  fault::FaultPlan faults;   ///< serving-layer chaos plan (zero rates = off)
};

enum class JobState : u8 { kQueued, kRunning, kDone, kFailed, kCancelled, kTimedOut };

std::string_view job_state_name(JobState state);

struct JobInfo {
  u64 id = 0;
  JobState state = JobState::kQueued;
  std::string error;  ///< failure detail (kFailed / kTimedOut)
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();  ///< implies shutdown()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue a replay job over `trace_bytes` (a whole trace file image;
  /// copied only if the job actually queues — a memoized resubmission is
  /// answered at submit time without copying or queueing). `kernel` >= 0
  /// replays only that kernel via the trace index (linear scan fallback
  /// for v1 traces). `deadline_ms` bounds the job's run time (0 = the
  /// server default). Fails with kUnavailable when the queue is full or
  /// the server is shutting down, kCorrupt when the trace image is
  /// quarantined.
  Status submit(const std::vector<u8>& trace_bytes, u32 workers, i64 kernel,
                u32 deadline_ms, u64& job_id_out);
  Status submit(const std::vector<u8>& trace_bytes, u32 workers, i64 kernel, u64& job_id_out) {
    return submit(trace_bytes, workers, kernel, 0, job_id_out);
  }

  Status status(u64 job_id, JobInfo& out) const;

  /// Fetch a finished job's report JSON. A queued/running job yields
  /// kUnavailable (poll again), unless `wait` blocks until it settles.
  /// A timed-out job yields kDeadlineExceeded.
  Status result(u64 job_id, bool wait, std::string& json_out);

  /// Cancel a job that has not started; running or settled jobs are not
  /// interrupted (kInvalidArgument names the state).
  Status cancel(u64 job_id);

  /// Service counters as JSON (queue depth, cache/memo hits and
  /// evictions, arena reuse/recycles, timeouts, quarantine, injected
  /// serving faults, ...).
  std::string stats_json() const;

  /// Drain: reject new submissions, finish every accepted job, join the
  /// workers. With `drain_timeout_ms` >= 0, jobs still queued when the
  /// budget expires are settled kCancelled (counted as drain_cancelled);
  /// running jobs always finish. Idempotent; results stay queryable
  /// afterwards.
  void shutdown(i64 drain_timeout_ms);
  void shutdown() { shutdown(-1); }

  /// Protocol dispatch — every verb maps onto one method above.
  /// SHUTDOWN drains (honoring ServerConfig::drain_timeout_ms) before
  /// answering.
  Response handle_request(const Request& request);

  /// Frame-level dispatch: parse + handle + encode. Parse failures
  /// become ERR responses, never a dropped connection. The frame-level
  /// chaos sites (serve_frame_truncate / serve_frame_corrupt) mutate the
  /// payload here, before parsing — downstream state never sees the
  /// intact frame.
  void handle_frame(const u8* data, size_t size, std::vector<u8>& response_payload_out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace haccrg::serve
