// The sharded trace-replay detection service. A Server owns a bounded
// job queue and a pool of worker threads; each worker carries its own
// pre-warmed ReplayArena (trace/replay.hpp) so steady-state jobs reuse
// detector state instead of rebuilding it. Traces are decoded once per
// distinct byte image (content-addressed cache) and, because sharded
// replay is deterministic and byte-identical across worker counts, the
// finished report for a (trace, kernel-slice) pair is memoized — a
// resubmitted trace is answered without replaying at all.
//
// Overload is rejected, not absorbed: when `max_queue` jobs are already
// waiting, submit() returns StatusCode::kUnavailable and the caller is
// expected to retry. shutdown() drains — no new submissions, every
// accepted job still runs to completion, workers join — after which
// results remain queryable.
//
// The Server is transport-agnostic: handle_request() maps protocol
// requests to the methods below, and haccrg_served_main.cpp moves the
// frames over a unix socket or stdio.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "serve/protocol.hpp"

namespace haccrg::serve {

struct ServerConfig {
  u32 workers = 2;       ///< worker threads draining the job queue
  u32 max_queue = 64;    ///< bound on queued (not yet running) jobs
  u64 max_trace_bytes = 32u << 20;  ///< largest accepted SUBMIT body
  bool memoize = true;   ///< reuse reports for identical (trace, slice) jobs
};

enum class JobState : u8 { kQueued, kRunning, kDone, kFailed, kCancelled };

std::string_view job_state_name(JobState state);

struct JobInfo {
  u64 id = 0;
  JobState state = JobState::kQueued;
  std::string error;  ///< failure detail (kFailed only)
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();  ///< implies shutdown()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue a replay job over `trace_bytes` (a whole trace file image;
  /// copied only if the job actually queues — a memoized resubmission is
  /// answered at submit time without copying or queueing). `kernel` >= 0
  /// replays only that kernel via the trace index (linear scan fallback
  /// for v1 traces). Fails with kUnavailable when the queue is full or
  /// the server is shutting down.
  Status submit(const std::vector<u8>& trace_bytes, u32 workers, i64 kernel, u64& job_id_out);

  Status status(u64 job_id, JobInfo& out) const;

  /// Fetch a finished job's report JSON. A queued/running job yields
  /// kUnavailable (poll again), unless `wait` blocks until it settles.
  Status result(u64 job_id, bool wait, std::string& json_out);

  /// Cancel a job that has not started; running or settled jobs are not
  /// interrupted (kInvalidArgument names the state).
  Status cancel(u64 job_id);

  /// Service counters as JSON (queue depth, cache/memo hits, arena
  /// reuse, index fallbacks, ...).
  std::string stats_json() const;

  /// Drain: reject new submissions, finish every accepted job, join the
  /// workers. Idempotent; results stay queryable afterwards.
  void shutdown();

  /// Protocol dispatch — every verb maps onto one method above.
  /// SHUTDOWN responds first, then drains.
  Response handle_request(const Request& request);

  /// Frame-level dispatch: parse + handle + encode. Parse failures
  /// become ERR responses, never a dropped connection.
  void handle_frame(const u8* data, size_t size, std::vector<u8>& response_payload_out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace haccrg::serve
