#include "serve/report.hpp"

#include <cstdio>
#include <map>
#include <tuple>
#include <vector>

#include "haccrg/race.hpp"

namespace haccrg::serve {

namespace {

/// Reporting group key: program location + memory space + failure class.
using GroupKey = std::tuple<u32 /*pc*/, u8 /*space*/, u8 /*type*/, u8 /*mech*/>;

struct Group {
  u64 count = 0;
  trace::RaceKey first;  ///< lowest identity in the group (set is sorted)
};

void append_kv(std::string& out, const char* key, u64 value, bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(value), comma ? ", " : "");
  out += buf;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    const unsigned char byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string build_report_json(const trace::ReplayResult& result) {
  std::string out = "{\n  \"kernels\": [\n";
  u64 unique_total = 0;
  for (size_t k = 0; k < result.kernels.size(); ++k) {
    const trace::KernelReplay& kernel = result.kernels[k];
    unique_total += kernel.races.unique();
    out += "    {\"label\": \"" + json_escape(kernel.label) + "\", ";
    append_kv(out, "events", kernel.events);
    append_kv(out, "cycles", kernel.cycles);
    append_kv(out, "shared_checks", kernel.shared_checks);
    append_kv(out, "global_checks", kernel.global_checks);
    append_kv(out, "unique_races", kernel.races.unique(), /*comma=*/false);
    out += k + 1 < result.kernels.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";

  // Group the sorted identity set; std::map keeps group order canonical.
  std::map<GroupKey, Group> groups;
  for (const trace::RaceKey& key : result.race_set()) {
    const GroupKey gk{std::get<7>(key), std::get<0>(key), std::get<1>(key), std::get<2>(key)};
    auto [it, inserted] = groups.emplace(gk, Group{0, key});
    ++it->second.count;
    (void)inserted;  // first insertion keeps the lowest key — set is sorted
  }

  out += "  \"races\": [\n";
  size_t emitted = 0;
  for (const auto& [gk, group] : groups) {
    const auto& [pc, space, type, mech] = gk;
    out += "    {";
    append_kv(out, "pc", pc);
    out += "\"space\": \"" +
           std::string(space == static_cast<u8>(rd::MemSpace::kShared) ? "shared" : "global") +
           "\", ";
    out += "\"type\": \"" +
           std::string(rd::race_type_name(static_cast<rd::RaceType>(type))) + "\", ";
    out += "\"mechanism\": \"" +
           std::string(rd::race_mechanism_name(static_cast<rd::RaceMechanism>(mech))) + "\", ";
    append_kv(out, "count", group.count);
    out += "\"first\": \"" + json_escape(trace::race_key_line(group.first)) + "\"}";
    out += ++emitted < groups.size() ? ",\n" : "\n";
  }
  out += "  ],\n  ";
  append_kv(out, "unique_races", unique_total);
  append_kv(out, "race_groups", groups.size());
  append_kv(out, "events", result.total_events, /*comma=*/false);
  out += "\n}\n";
  return out;
}

}  // namespace haccrg::serve
