#include "serve/client.hpp"

#include <chrono>
#include <thread>

namespace haccrg::serve {

Client::Client(RequestFn transport, const ClientConfig& config)
    : transport_(std::move(transport)), config_(config), rng_(config.seed) {
  if (config_.max_attempts == 0) config_.max_attempts = 1;
  if (config_.base_backoff_ms == 0) config_.base_backoff_ms = 1;
  if (config_.max_backoff_ms < config_.base_backoff_ms)
    config_.max_backoff_ms = config_.base_backoff_ms;
}

Client Client::in_process(Server& server, const ClientConfig& config) {
  return Client(
      [&server](const Request& request, Response& response) -> Status {
        std::vector<u8> payload;
        encode_request(request, payload);
        std::vector<u8> reply;
        server.handle_frame(payload.data(), payload.size(), reply);
        return parse_response(reply.data(), reply.size(), response);
      },
      config);
}

Status Client::roundtrip(const Request& request, Response& response) {
  response = Response{};
  return transport_(request, response);
}

u32 Client::next_backoff_ms(u32 attempt) {
  u64 backoff = config_.base_backoff_ms;
  for (u32 i = 0; i < attempt && backoff < config_.max_backoff_ms; ++i) backoff *= 2;
  if (backoff > config_.max_backoff_ms) backoff = config_.max_backoff_ms;
  // Jitter into [backoff/2, backoff]: enough spread to break up a
  // rejected herd, while a capped floor keeps the retry budget math
  // predictable.
  const u64 half = backoff / 2;
  return static_cast<u32>(half + rng_.next() % (backoff - half + 1));
}

Status Client::submit(const std::vector<u8>& trace, u32 workers, i64 kernel,
                      u32 deadline_ms, u64& job_id_out) {
  Request request;
  request.verb = Verb::kSubmit;
  request.workers = workers;
  request.kernel = kernel;
  request.deadline_ms = deadline_ms;
  request.trace = trace;

  u64 slept_ms = 0;
  for (u32 attempt = 0;; ++attempt) {
    Response response;
    if (Status status = roundtrip(request, response); !status.ok()) return status;
    if (response.ok) {
      job_id_out = response.job_id;
      return Status();
    }
    // Only "come back later" is retryable. Everything else — bad
    // argument, corrupt frame, quarantined trace — is a fact about the
    // request and retrying would just repeat it.
    if (response.code != StatusCode::kUnavailable || attempt + 1 >= config_.max_attempts)
      return Status(response.code, response.body);
    const u32 backoff = next_backoff_ms(attempt);
    if (slept_ms + backoff > config_.retry_budget_ms)
      return Status(response.code, response.body + " (retry budget exhausted)");
    slept_ms += backoff;
    ++retries_;
    backoff_ms_total_ += backoff;
    if (config_.sleep_ms)
      config_.sleep_ms(backoff);
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  }
}

Status Client::status(u64 job_id, JobInfo& out) {
  Request request;
  request.verb = Verb::kStatus;
  request.job_id = job_id;
  Response response;
  if (Status status = roundtrip(request, response); !status.ok()) return status;
  if (!response.ok) return Status(response.code, response.body);
  out.id = response.job_id;
  out.error = response.body;
  out.state = JobState::kQueued;
  for (u8 s = 0; s <= static_cast<u8>(JobState::kTimedOut); ++s) {
    if (response.state == job_state_name(static_cast<JobState>(s))) {
      out.state = static_cast<JobState>(s);
      break;
    }
  }
  return Status();
}

Status Client::result(u64 job_id, bool wait, std::string& json_out) {
  Request request;
  request.verb = Verb::kResult;
  request.job_id = job_id;
  request.wait = wait;
  Response response;
  if (Status status = roundtrip(request, response); !status.ok()) return status;
  if (!response.ok) return Status(response.code, response.body);
  json_out = std::move(response.body);
  return Status();
}

Status Client::cancel(u64 job_id) {
  Request request;
  request.verb = Verb::kCancel;
  request.job_id = job_id;
  Response response;
  if (Status status = roundtrip(request, response); !status.ok()) return status;
  if (!response.ok) return Status(response.code, response.body);
  return Status();
}

Status Client::stats(std::string& json_out) {
  Request request;
  request.verb = Verb::kStats;
  Response response;
  if (Status status = roundtrip(request, response); !status.ok()) return status;
  if (!response.ok) return Status(response.code, response.body);
  json_out = std::move(response.body);
  return Status();
}

Status Client::shutdown() {
  Request request;
  request.verb = Verb::kShutdown;
  Response response;
  if (Status status = roundtrip(request, response); !status.ok()) return status;
  if (!response.ok) return Status(response.code, response.body);
  return Status();
}

}  // namespace haccrg::serve
