// Seeded fault-injection layer for resilience campaigns (and nothing
// else: with an empty FaultPlan every hook is a null-pointer check and
// the simulation is byte-identical to a build without this subsystem).
//
// Determinism discipline (same as the epoch engine): every injection
// site gets one RNG stream per hardware unit — per SM for sites rolled
// inside the parallel SM phase, per memory partition for the DRAM site,
// a single stream for sites rolled only in serial phases. A stream is
// advanced only by its own unit's deterministic event sequence, so a
// campaign's fault placement is bit-reproducible for any HACCRG_THREADS
// value; the fault-campaign determinism test asserts exactly this.
//
// Cross-unit effects are staged, not applied: the DRAM site records the
// flips a partition drew during its (parallel) step and the Gpu applies
// them to device memory in the serial post-step phase, in partition-id
// order — mirroring how the engine commits every other cross-SM effect.
#pragma once

#include <array>
#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace haccrg::fault {

/// Every place a fault can land. The order pins each site's RNG-stream
/// key and its HACCRG_FAULTS key, so it is append-only.
enum class FaultSite : u8 {
  kSharedShadowFlip = 0,  ///< bit flip in a SharedRdu shadow entry (pre-check)
  kGlobalShadowFlip,      ///< transient bit flip in a GlobalRdu shadow read
  kBloomFlip,             ///< bit flip in a thread's Bloom lockset signature
  kRaceRegDrop,           ///< race-register-file entry loss (fence/sync ID reset)
  kIcntDrop,              ///< request packet dropped (bounded retry re-sends it)
  kIcntDup,               ///< request packet duplicated
  kIcntDelay,             ///< request packet held one retry window
  kDramShadowFlip,        ///< persistent DRAM bit flip, confined to the shadow region
  kTraceCorrupt,          ///< byte corruption of a just-encoded trace record

  // Serving-layer sites (haccrg-served). Rolled by serve::Server through
  // a ServeFaults instance, never by the simulator's FaultInjector.
  kServeFrameTruncate,    ///< request frame loses its tail on the transport
  kServeFrameCorrupt,     ///< request frame takes a byte flip on the transport
  kServeDecodeCorrupt,    ///< a job's view of the decode cache is corrupted
  kServeWorkerStall,      ///< worker stalls before replaying a job
  kServeQueueReject,      ///< submit sees a spurious queue-full burst
};

inline constexpr u32 kNumFaultSites = 14;
/// First serving-layer site; [kFirstServeSite, kNumFaultSites) are the
/// sites ServeFaults rolls.
inline constexpr u32 kFirstServeSite = static_cast<u32>(FaultSite::kServeFrameTruncate);

/// Human name ("shared-shadow-flip") for reports.
std::string_view fault_site_name(FaultSite site);

/// HACCRG_FAULTS key ("shared_flip") for the config syntax.
std::string_view fault_site_key(FaultSite site);

/// A campaign configuration: one seed, one rate per site (parts per
/// million of that site's opportunities), and the interconnect retry
/// policy. Parsed from HACCRG_FAULTS ("seed=7,icnt_drop=500,...") or
/// built directly by the campaign harness.
struct FaultPlan {
  u64 seed = 0;
  std::array<u32, kNumFaultSites> rate_ppm{};

  /// Cycles a dropped/delayed packet waits before re-injection.
  u32 retry_timeout = 64;
  /// Drops/delays tolerated per packet before it is forced through
  /// (bounds worst-case latency; 0 disables the drop/delay sites).
  u32 max_retries = 4;

  u32 rate(FaultSite site) const { return rate_ppm[static_cast<u32>(site)]; }
  void set_rate(FaultSite site, u32 ppm) { rate_ppm[static_cast<u32>(site)] = ppm; }

  /// Any site armed?
  bool any() const;

  /// One-line rendering of the non-default knobs.
  std::string describe() const;

  /// Parse the HACCRG_FAULTS syntax: comma-separated key=value pairs.
  /// Keys: seed, retry_timeout, max_retries, and one key per site (see
  /// fault_site_key). Rates are ppm in [0, 1000000]. An empty string is
  /// a valid no-fault plan. On error, `out` is untouched.
  static Status parse(const std::string& text, FaultPlan& out);
};

/// One deterministic RNG stream (SplitMix64 keyed by seed/site/unit).
class FaultStream {
 public:
  FaultStream() = default;
  FaultStream(u64 seed, FaultSite site, u32 unit)
      : rng_(seed ^ (0x9e3779b97f4a7c15ULL *
                     (static_cast<u64>(site) * 1024 + unit + 1))) {}

  /// Bernoulli trial at `ppm` parts per million; advances the stream
  /// only when the site is armed so a zero-rate site costs nothing and
  /// never perturbs another site's placement.
  bool roll(u32 ppm) {
    if (ppm == 0) return false;
    const bool hit = rng_.next() % 1'000'000 < ppm;
    if (hit) ++injected_;
    return hit;
  }

  /// Auxiliary draw for fault parameters (which bit, which entry).
  u64 draw() { return rng_.next(); }

  u64 injected() const { return injected_; }

 private:
  SplitMix64 rng_{0};
  u64 injected_ = 0;
};

/// A staged DRAM shadow flip, applied serially by the Gpu.
struct DramFlip {
  Addr addr = 0;  ///< u64-aligned address inside the shadow region
  u32 bit = 0;    ///< bit index in [0, 64)
};

enum class IcntFaultKind : u8 { kNone = 0, kDrop, kDup, kDelay };

/// Per-launch injector: owns every site's streams and the DRAM-flip
/// staging. Wired into the simulator with raw pointers (null = off), so
/// the zero-fault hot path stays a single branch.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, u32 num_sms, u32 num_partitions);

  const FaultPlan& plan() const { return plan_; }

  // --- Parallel SM-phase sites (call only from SM `sm`'s thread) ------------
  /// True => flip `bit` (0..11, the architectural bits of a packed
  /// shared shadow entry) in the entry about to be checked.
  bool shared_shadow_flip(u32 sm, u32& bit);
  /// True => corrupt a Bloom signature; `pick` seeds the thread/bit choice.
  bool bloom_flip(u32 sm, u64& pick);
  /// True => drop a race-register entry; `pick` seeds the warp/block choice.
  bool racereg_drop(u32 sm, u64& pick);

  // --- Serial commit-phase sites --------------------------------------------
  /// True => flip `bit` (0..63) in the global shadow word being read.
  bool global_shadow_flip(u32& bit);
  /// Fate of one request packet at commit (SM-id-ordered serial phase).
  IcntFaultKind icnt_fault(u32 sm);
  /// True => corrupt a freshly encoded trace record; `pick` seeds the
  /// byte offset and XOR mask.
  bool trace_corrupt(u64& pick);

  // --- Parallel partition-phase site (thread-confined staging) --------------
  /// Bounds within which DRAM flips are allowed (the shadow region).
  void set_shadow_region(Addr base, u64 bytes);
  /// Partition `partition` accepted a shadow packet covering
  /// [addr, addr+bytes); may stage a flip inside it. Thread-confined:
  /// touches only that partition's stream and staging slot.
  void note_shadow_packet(u32 partition, Addr addr, u32 bytes);
  /// Move every staged flip into `out` in partition-id order (the
  /// serial post-step phase). Returns true if any flip was staged.
  bool drain_dram_flips(std::vector<DramFlip>& out);

  // --- Accounting -----------------------------------------------------------
  u64 injected(FaultSite site) const;
  /// Injections that can silently suppress a detection (state corruption
  /// sites) — the fault half of the rd.coverage_lost invariant. The
  /// interconnect sites are excluded: packets are data-less, so their
  /// faults perturb timing, never detector state.
  u64 detector_state_injections() const;
  /// Adds one "fault.<key>" counter per site with a non-zero injection
  /// count (nothing for quiet sites, so zero-fault golden stats are
  /// byte-identical).
  void export_stats(StatSet& stats) const;

 private:
  FaultStream& stream(FaultSite site, u32 unit = 0) {
    return streams_[static_cast<u32>(site)][unit];
  }
  u32 rate(FaultSite site) const { return plan_.rate(site); }

  FaultPlan plan_;
  std::array<std::vector<FaultStream>, kNumFaultSites> streams_;
  std::vector<std::vector<DramFlip>> dram_staged_;  ///< one slot per partition
  Addr shadow_base_ = 0;
  u64 shadow_bytes_ = 0;
};

/// Injector for the serving-layer sites. Unlike FaultInjector's
/// per-unit advancing streams, every roll here is *stateless*: the
/// outcome is a pure function of (seed, site, event ordinal), so fault
/// placement does not depend on which worker thread handles which job
/// or how requests interleave — a chaos campaign replays bit-identically
/// from its seed and submission order alone. Counters are atomic; rolls
/// are safe from any thread.
class ServeFaults {
 public:
  explicit ServeFaults(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  /// Any serving site armed?
  bool any() const {
    for (u32 i = kFirstServeSite; i < kNumFaultSites; ++i)
      if (plan_.rate_ppm[i] != 0) return true;
    return false;
  }

  /// Bernoulli trial for `site` at event ordinal `event` (job id, frame
  /// ordinal, submit sequence — whatever identifies the opportunity).
  /// On a hit, `pick` (if non-null) receives a deterministic auxiliary
  /// draw for fault parameters (byte offset, XOR mask, ...).
  bool roll(FaultSite site, u64 event, u64* pick = nullptr) {
    const u32 ppm = plan_.rate(site);
    if (ppm == 0) return false;
    SplitMix64 rng(plan_.seed ^
                   (0x9e3779b97f4a7c15ULL * (static_cast<u64>(site) * 0x10001 + 1)) ^
                   (event * 0xd1342543de82ef95ULL));
    if (rng.next() % 1'000'000 >= ppm) return false;
    if (pick != nullptr) *pick = rng.next();
    injected_[static_cast<u32>(site)].fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  u64 injected(FaultSite site) const {
    return injected_[static_cast<u32>(site)].load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  std::array<std::atomic<u64>, kNumFaultSites> injected_{};
};

}  // namespace haccrg::fault
