#include "fault/fault.hpp"

#include <cstdlib>

namespace haccrg::fault {

namespace {

constexpr std::string_view kSiteNames[kNumFaultSites] = {
    "shared-shadow-flip",   "global-shadow-flip",  "bloom-flip",
    "racereg-drop",         "icnt-drop",           "icnt-dup",
    "icnt-delay",           "dram-shadow-flip",    "trace-corrupt",
    "serve-frame-truncate", "serve-frame-corrupt", "serve-decode-corrupt",
    "serve-worker-stall",   "serve-queue-reject",
};

constexpr std::string_view kSiteKeys[kNumFaultSites] = {
    "shared_flip",          "global_flip",         "bloom_flip",
    "racereg_drop",         "icnt_drop",           "icnt_dup",
    "icnt_delay",           "dram_flip",           "trace_corrupt",
    "serve_frame_truncate", "serve_frame_corrupt", "serve_decode_corrupt",
    "serve_worker_stall",   "serve_queue_reject",
};

constexpr u32 kMaxPpm = 1'000'000;

/// Strict u64 parse: the whole token must be decimal digits.
bool parse_u64(std::string_view text, u64& out) {
  if (text.empty() || text.size() > 20) return false;
  u64 value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const u64 digit = static_cast<u64>(c - '0');
    if (value > (~0ULL - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace

std::string_view fault_site_name(FaultSite site) {
  return kSiteNames[static_cast<u32>(site)];
}

std::string_view fault_site_key(FaultSite site) {
  return kSiteKeys[static_cast<u32>(site)];
}

bool FaultPlan::any() const {
  for (u32 ppm : rate_ppm) {
    if (ppm != 0) return true;
  }
  return false;
}

std::string FaultPlan::describe() const {
  std::string out = "seed=" + std::to_string(seed);
  for (u32 i = 0; i < kNumFaultSites; ++i) {
    if (rate_ppm[i] == 0) continue;
    out += ",";
    out += kSiteKeys[i];
    out += "=";
    out += std::to_string(rate_ppm[i]);
  }
  if (retry_timeout != FaultPlan{}.retry_timeout)
    out += ",retry_timeout=" + std::to_string(retry_timeout);
  if (max_retries != FaultPlan{}.max_retries)
    out += ",max_retries=" + std::to_string(max_retries);
  return out;
}

Status FaultPlan::parse(const std::string& text, FaultPlan& out) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string_view pair(text.data() + pos, end - pos);
    pos = end + 1;
    if (pair.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas

    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalid_argument(
          "HACCRG_FAULTS: expected key=value, got '" + std::string(pair) + "'");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    u64 number = 0;
    if (!parse_u64(value, number)) {
      return Status::invalid_argument("HACCRG_FAULTS: bad value '" +
                                      std::string(value) + "' for key '" +
                                      std::string(key) + "'");
    }

    if (key == "seed") {
      plan.seed = number;
      continue;
    }
    if (key == "retry_timeout") {
      if (number == 0 || number > 1'000'000) {
        return Status::invalid_argument(
            "HACCRG_FAULTS: retry_timeout must be in [1, 1000000] cycles");
      }
      plan.retry_timeout = static_cast<u32>(number);
      continue;
    }
    if (key == "max_retries") {
      if (number > 1024) {
        return Status::invalid_argument(
            "HACCRG_FAULTS: max_retries must be at most 1024");
      }
      plan.max_retries = static_cast<u32>(number);
      continue;
    }

    bool matched = false;
    for (u32 i = 0; i < kNumFaultSites; ++i) {
      if (key != kSiteKeys[i]) continue;
      if (number > kMaxPpm) {
        return Status::invalid_argument(
            "HACCRG_FAULTS: rate for '" + std::string(key) +
            "' exceeds 1000000 ppm");
      }
      plan.rate_ppm[i] = static_cast<u32>(number);
      matched = true;
      break;
    }
    if (!matched) {
      return Status::invalid_argument("HACCRG_FAULTS: unknown key '" +
                                      std::string(key) + "'");
    }
  }
  out = plan;
  return Status();
}

FaultInjector::FaultInjector(const FaultPlan& plan, u32 num_sms,
                             u32 num_partitions)
    : plan_(plan), dram_staged_(num_partitions) {
  const auto per_unit = [&](FaultSite site, u32 units) {
    auto& vec = streams_[static_cast<u32>(site)];
    vec.reserve(units);
    for (u32 u = 0; u < units; ++u) vec.emplace_back(plan.seed, site, u);
  };
  per_unit(FaultSite::kSharedShadowFlip, num_sms);
  per_unit(FaultSite::kBloomFlip, num_sms);
  per_unit(FaultSite::kRaceRegDrop, num_sms);
  // The interconnect sites roll in the serial, SM-id-ordered commit
  // phase, but keep one stream per SM anyway: the number of packets an
  // SM commits per epoch is deterministic per SM, so per-SM streams keep
  // fault placement independent of how other SMs' traffic interleaves.
  per_unit(FaultSite::kIcntDrop, num_sms);
  per_unit(FaultSite::kIcntDup, num_sms);
  per_unit(FaultSite::kIcntDelay, num_sms);
  per_unit(FaultSite::kDramShadowFlip, num_partitions);
  per_unit(FaultSite::kGlobalShadowFlip, 1);
  per_unit(FaultSite::kTraceCorrupt, 1);
}

bool FaultInjector::shared_shadow_flip(u32 sm, u32& bit) {
  auto& s = stream(FaultSite::kSharedShadowFlip, sm);
  if (!s.roll(rate(FaultSite::kSharedShadowFlip))) return false;
  bit = static_cast<u32>(s.draw() % 12);  // the 12 architectural entry bits
  return true;
}

bool FaultInjector::bloom_flip(u32 sm, u64& pick) {
  auto& s = stream(FaultSite::kBloomFlip, sm);
  if (!s.roll(rate(FaultSite::kBloomFlip))) return false;
  pick = s.draw();
  return true;
}

bool FaultInjector::racereg_drop(u32 sm, u64& pick) {
  auto& s = stream(FaultSite::kRaceRegDrop, sm);
  if (!s.roll(rate(FaultSite::kRaceRegDrop))) return false;
  pick = s.draw();
  return true;
}

bool FaultInjector::global_shadow_flip(u32& bit) {
  auto& s = stream(FaultSite::kGlobalShadowFlip);
  if (!s.roll(rate(FaultSite::kGlobalShadowFlip))) return false;
  bit = static_cast<u32>(s.draw() % 64);
  return true;
}

IcntFaultKind FaultInjector::icnt_fault(u32 sm) {
  // One roll per site, in enum order, first hit wins. Rolling every
  // armed site (rather than short-circuiting) keeps each stream's
  // position a function of packet count alone, so arming kIcntDup does
  // not move kIcntDelay's placements.
  const bool drop = stream(FaultSite::kIcntDrop, sm).roll(rate(FaultSite::kIcntDrop));
  const bool dup = stream(FaultSite::kIcntDup, sm).roll(rate(FaultSite::kIcntDup));
  const bool delay =
      stream(FaultSite::kIcntDelay, sm).roll(rate(FaultSite::kIcntDelay));
  if (drop) return IcntFaultKind::kDrop;
  if (dup) return IcntFaultKind::kDup;
  if (delay) return IcntFaultKind::kDelay;
  return IcntFaultKind::kNone;
}

bool FaultInjector::trace_corrupt(u64& pick) {
  auto& s = stream(FaultSite::kTraceCorrupt);
  if (!s.roll(rate(FaultSite::kTraceCorrupt))) return false;
  pick = s.draw();
  return true;
}

void FaultInjector::set_shadow_region(Addr base, u64 bytes) {
  shadow_base_ = base;
  shadow_bytes_ = bytes;
}

void FaultInjector::note_shadow_packet(u32 partition, Addr addr, u32 bytes) {
  if (shadow_bytes_ == 0 || bytes == 0) return;
  auto& s = stream(FaultSite::kDramShadowFlip, partition);
  if (!s.roll(rate(FaultSite::kDramShadowFlip))) return;
  // Pick a u64-aligned word inside the packet, clamped to the shadow
  // region — DRAM faults must never leak into application data.
  const u64 raw = s.draw();
  Addr word = (addr + static_cast<Addr>(raw % bytes)) & ~Addr{7};
  if (word < shadow_base_) word = shadow_base_;
  const Addr last = static_cast<Addr>(shadow_base_ + shadow_bytes_ - 8);
  if (word > last) word = last & ~Addr{7};
  dram_staged_[partition].push_back(
      DramFlip{word, static_cast<u32>((raw >> 32) % 64)});
}

bool FaultInjector::drain_dram_flips(std::vector<DramFlip>& out) {
  bool any = false;
  for (auto& staged : dram_staged_) {
    for (const DramFlip& flip : staged) {
      out.push_back(flip);
      any = true;
    }
    staged.clear();
  }
  return any;
}

u64 FaultInjector::injected(FaultSite site) const {
  u64 total = 0;
  for (const FaultStream& s : streams_[static_cast<u32>(site)])
    total += s.injected();
  // DRAM rolls that hit but were discarded (no shadow region yet) still
  // count as injections in the stream; that is fine — the discard can
  // only happen before launch wiring, which never occurs in practice.
  return total;
}

u64 FaultInjector::detector_state_injections() const {
  return injected(FaultSite::kSharedShadowFlip) +
         injected(FaultSite::kGlobalShadowFlip) +
         injected(FaultSite::kBloomFlip) + injected(FaultSite::kRaceRegDrop) +
         injected(FaultSite::kDramShadowFlip);
}

void FaultInjector::export_stats(StatSet& stats) const {
  for (u32 i = 0; i < kNumFaultSites; ++i) {
    const u64 count = injected(static_cast<FaultSite>(i));
    if (count == 0) continue;
    stats.add("fault." + std::string(kSiteKeys[i]), count);
  }
}

}  // namespace haccrg::fault
