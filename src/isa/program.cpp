#include "isa/program.hpp"

#include <sstream>
#include <vector>

namespace haccrg::isa {

std::string Program::validate() const {
  if (code_.empty()) return "empty program";
  if (regs_used_ > kMaxRegs) return "too many registers";
  if (preds_used_ > kMaxPreds) return "too many predicates";

  // A jump past the final kExit could land on (or skip over) the only
  // instruction that retires the warp, so targets are bounded by it
  // rather than by size().
  u32 last_exit = size();  // sentinel: no exit found
  for (u32 pc = 0; pc < size(); ++pc) {
    if (code_[pc].op == Opcode::kExit) last_exit = pc;
  }

  int depth = 0;
  bool has_exit = false;
  for (u32 pc = 0; pc < size(); ++pc) {
    const Instr& ins = code_[pc];
    if (ins.dst >= kMaxRegs || ins.src0 >= kMaxRegs || ins.src1 >= kMaxRegs ||
        ins.src2 >= kMaxRegs) {
      return "register index out of range at pc " + std::to_string(pc);
    }
    switch (ins.op) {
      case Opcode::kIf:
        if (ins.aux >= kMaxPreds) return "predicate index out of range at pc " + std::to_string(pc);
        ++depth;
        break;
      case Opcode::kLoopBegin:
        ++depth;
        break;
      case Opcode::kEndIf:
      case Opcode::kLoopEnd:
        if (--depth < 0) return "unbalanced scope at pc " + std::to_string(pc);
        break;
      case Opcode::kBreakIfNot:
      case Opcode::kBreakIf:
        if (ins.aux >= kMaxPreds) return "predicate index out of range at pc " + std::to_string(pc);
        [[fallthrough]];
      case Opcode::kJump:
        if (ins.imm >= size()) return "jump target out of range at pc " + std::to_string(pc);
        if (last_exit < size() && ins.imm > last_exit)
          return "jump target past the final exit at pc " + std::to_string(pc);
        break;
      case Opcode::kSetp:
        if (ins.dst >= kMaxPreds) return "predicate index out of range at pc " + std::to_string(pc);
        break;
      case Opcode::kSel:
        if (ins.aux >= kMaxPreds) return "predicate index out of range at pc " + std::to_string(pc);
        break;
      case Opcode::kParam:
        if (ins.imm >= kMaxParams) return "parameter slot out of range at pc " + std::to_string(pc);
        break;
      case Opcode::kLdGlobal:
      case Opcode::kStGlobal:
      case Opcode::kLdShared:
      case Opcode::kStShared:
        if (ins.aux != 1 && ins.aux != 4)
          return "unsupported access width at pc " + std::to_string(pc);
        break;
      case Opcode::kExit:
        has_exit = true;
        break;
      default:
        break;
    }
  }
  if (depth != 0) return "unclosed control scope";
  if (!has_exit && code_.back().op != Opcode::kExit) return "missing exit";
  return {};
}

std::string Program::disassemble() const {
  std::ostringstream out;
  int indent = 0;
  for (u32 pc = 0; pc < size(); ++pc) {
    const Instr& ins = code_[pc];
    if (ins.op == Opcode::kEndIf || ins.op == Opcode::kLoopEnd || ins.op == Opcode::kElse) {
      if (indent > 0) --indent;
    }
    out << pc << ":\t";
    for (int i = 0; i < indent; ++i) out << "  ";
    out << opcode_name(ins.op);
    switch (ins.op) {
      case Opcode::kSetp:
        out << "." << cmp_name(ins.cmp()) << " p" << int(ins.dst) << ", r" << int(ins.src0) << ", ";
        if (ins.src1_is_imm)
          out << ins.imm;
        else
          out << "r" << int(ins.src1);
        break;
      case Opcode::kSel:
        out << " r" << int(ins.dst) << ", p" << int(ins.aux) << " ? r" << int(ins.src0) << " : r"
            << int(ins.src1);
        break;
      case Opcode::kSpecial:
        out << " r" << int(ins.dst) << ", %" << ins.imm;
        break;
      case Opcode::kParam:
        out << " r" << int(ins.dst) << ", param[" << ins.imm << "]";
        break;
      case Opcode::kIf:
      case Opcode::kBreakIfNot:
      case Opcode::kBreakIf:
        out << " p" << int(ins.aux);
        if (ins.op != Opcode::kIf) out << " -> " << ins.imm;
        break;
      case Opcode::kJump:
        out << " -> " << ins.imm;
        break;
      case Opcode::kLdGlobal:
      case Opcode::kLdShared:
        out << ".w" << int(ins.aux) << " r" << int(ins.dst) << ", [r" << int(ins.src0) << "+"
            << ins.imm << "]";
        break;
      case Opcode::kStGlobal:
      case Opcode::kStShared:
        out << ".w" << int(ins.aux) << " [r" << int(ins.src0) << "+" << ins.imm << "], r"
            << int(ins.src1);
        break;
      case Opcode::kAtomGlobal:
      case Opcode::kAtomShared:
        out << "." << atomic_name(ins.atomic()) << " r" << int(ins.dst) << ", [r" << int(ins.src0)
            << "+" << ins.imm << "], r" << int(ins.src1);
        if (ins.atomic() == AtomicOp::kCas) out << ", r" << int(ins.src2);
        break;
      case Opcode::kLockAcqMark:
        out << " r" << int(ins.src0);
        break;
      case Opcode::kBar:
      case Opcode::kMemBar:
      case Opcode::kMemBarBlock:
      case Opcode::kLockRelMark:
      case Opcode::kExit:
      case Opcode::kNop:
      case Opcode::kElse:
      case Opcode::kEndIf:
      case Opcode::kLoopBegin:
      case Opcode::kLoopEnd:
        break;
      default:
        // Generic ALU form.
        out << " r" << int(ins.dst) << ", r" << int(ins.src0);
        if (ins.src1_is_imm)
          out << ", " << ins.imm;
        else if (ins.op != Opcode::kMov && ins.op != Opcode::kNot && ins.op != Opcode::kFSqrt &&
                 ins.op != Opcode::kFAbs && ins.op != Opcode::kI2F && ins.op != Opcode::kF2I &&
                 ins.op != Opcode::kFLog && ins.op != Opcode::kFExp)
          out << ", r" << int(ins.src1);
        break;
    }
    out << "\n";
    if (ins.op == Opcode::kIf || ins.op == Opcode::kElse || ins.op == Opcode::kLoopBegin) ++indent;
  }
  return out.str();
}

}  // namespace haccrg::isa
