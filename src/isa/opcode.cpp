#include "isa/opcode.hpp"

namespace haccrg::isa {

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kMulHi: return "mulhi";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNot: return "not";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kSra: return "sra";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kFSqrt: return "fsqrt";
    case Opcode::kFMin: return "fmin";
    case Opcode::kFMax: return "fmax";
    case Opcode::kFAbs: return "fabs";
    case Opcode::kFLog: return "flog";
    case Opcode::kFExp: return "fexp";
    case Opcode::kI2F: return "i2f";
    case Opcode::kF2I: return "f2i";
    case Opcode::kSetp: return "setp";
    case Opcode::kSel: return "sel";
    case Opcode::kSpecial: return "special";
    case Opcode::kParam: return "param";
    case Opcode::kIf: return "if";
    case Opcode::kElse: return "else";
    case Opcode::kEndIf: return "endif";
    case Opcode::kLoopBegin: return "loop";
    case Opcode::kBreakIfNot: return "brk.ifnot";
    case Opcode::kBreakIf: return "brk.if";
    case Opcode::kJump: return "jmp";
    case Opcode::kLoopEnd: return "endloop";
    case Opcode::kLdGlobal: return "ld.global";
    case Opcode::kStGlobal: return "st.global";
    case Opcode::kLdShared: return "ld.shared";
    case Opcode::kStShared: return "st.shared";
    case Opcode::kAtomGlobal: return "atom.global";
    case Opcode::kAtomShared: return "atom.shared";
    case Opcode::kBar: return "bar.sync";
    case Opcode::kMemBar: return "membar.gl";
    case Opcode::kMemBarBlock: return "membar.cta";
    case Opcode::kLockAcqMark: return "mark.acq";
    case Opcode::kLockRelMark: return "mark.rel";
    case Opcode::kExit: return "exit";
    case Opcode::kNop: return "nop";
  }
  return "?";
}

std::string_view cmp_name(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "eq";
    case CmpOp::kNe: return "ne";
    case CmpOp::kLtU: return "lt.u";
    case CmpOp::kLeU: return "le.u";
    case CmpOp::kGtU: return "gt.u";
    case CmpOp::kGeU: return "ge.u";
    case CmpOp::kLtS: return "lt.s";
    case CmpOp::kLeS: return "le.s";
    case CmpOp::kGtS: return "gt.s";
    case CmpOp::kGeS: return "ge.s";
    case CmpOp::kLtF: return "lt.f";
    case CmpOp::kLeF: return "le.f";
    case CmpOp::kGtF: return "gt.f";
    case CmpOp::kGeF: return "ge.f";
    case CmpOp::kEqF: return "eq.f";
    case CmpOp::kNeF: return "ne.f";
  }
  return "?";
}

std::string_view atomic_name(AtomicOp op) {
  switch (op) {
    case AtomicOp::kAdd: return "add";
    case AtomicOp::kInc: return "inc";
    case AtomicOp::kExch: return "exch";
    case AtomicOp::kCas: return "cas";
    case AtomicOp::kMin: return "min";
    case AtomicOp::kMax: return "max";
    case AtomicOp::kAnd: return "and";
    case AtomicOp::kOr: return "or";
  }
  return "?";
}

bool is_memory_op(Opcode op) {
  switch (op) {
    case Opcode::kLdGlobal:
    case Opcode::kStGlobal:
    case Opcode::kLdShared:
    case Opcode::kStShared:
    case Opcode::kAtomGlobal:
    case Opcode::kAtomShared:
      return true;
    default:
      return false;
  }
}

bool is_global_op(Opcode op) {
  return op == Opcode::kLdGlobal || op == Opcode::kStGlobal || op == Opcode::kAtomGlobal;
}

bool is_shared_op(Opcode op) {
  return op == Opcode::kLdShared || op == Opcode::kStShared || op == Opcode::kAtomShared;
}

bool is_load_op(Opcode op) { return op == Opcode::kLdGlobal || op == Opcode::kLdShared; }

bool is_atomic_op(Opcode op) { return op == Opcode::kAtomGlobal || op == Opcode::kAtomShared; }

TraceEventClass trace_event_class(Opcode op) {
  switch (op) {
    case Opcode::kLdShared: return TraceEventClass::kSharedLoad;
    case Opcode::kStShared: return TraceEventClass::kSharedStore;
    case Opcode::kAtomShared: return TraceEventClass::kSharedAtomic;
    case Opcode::kLdGlobal: return TraceEventClass::kGlobalLoad;
    case Opcode::kStGlobal: return TraceEventClass::kGlobalStore;
    case Opcode::kAtomGlobal: return TraceEventClass::kGlobalAtomic;
    case Opcode::kBar: return TraceEventClass::kBarrier;
    case Opcode::kMemBar:
    case Opcode::kMemBarBlock:
      return TraceEventClass::kFence;
    case Opcode::kLockAcqMark: return TraceEventClass::kLockAcquire;
    case Opcode::kLockRelMark: return TraceEventClass::kLockRelease;
    default: return TraceEventClass::kNone;
  }
}

std::string_view trace_event_class_name(TraceEventClass c) {
  switch (c) {
    case TraceEventClass::kNone: return "none";
    case TraceEventClass::kSharedLoad: return "shared.load";
    case TraceEventClass::kSharedStore: return "shared.store";
    case TraceEventClass::kSharedAtomic: return "shared.atom";
    case TraceEventClass::kGlobalLoad: return "global.load";
    case TraceEventClass::kGlobalStore: return "global.store";
    case TraceEventClass::kGlobalAtomic: return "global.atom";
    case TraceEventClass::kBarrier: return "barrier";
    case TraceEventClass::kFence: return "fence";
    case TraceEventClass::kLockAcquire: return "lock.acq";
    case TraceEventClass::kLockRelease: return "lock.rel";
  }
  return "?";
}

}  // namespace haccrg::isa
