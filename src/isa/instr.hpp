// Instruction encoding of the mini-PTX ISA. A fixed-format struct keeps
// the interpreter's dispatch cheap; builders and instrumentation passes
// construct these directly.
#pragma once

#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace haccrg::isa {

constexpr u32 kMaxRegs = 64;   ///< 32-bit registers per thread
constexpr u32 kMaxPreds = 16;  ///< predicate registers per thread
constexpr u32 kMaxParams = 16; ///< u32 kernel parameters per launch

/// One decoded instruction.
///
/// Field usage by class:
///  * ALU: dst, src0, src1 (or imm when `src1_is_imm`)
///  * kSetp: dst = predicate index, aux = CmpOp
///  * kSel: dst, src0, src1, aux = predicate index
///  * kSpecial/kParam: dst, imm = selector/slot
///  * control flow: aux = predicate index, imm = jump target pc
///  * memory: dst (loads), src0 = address reg, src1 = store value,
///    imm = byte offset, aux = width in bytes (1 or 4)
///  * atomics: dst = old value, src0 = address reg, src1 = operand,
///    src2 = CAS compare, aux = AtomicOp, imm = byte offset
struct Instr {
  Opcode op = Opcode::kNop;
  u8 dst = 0;
  u8 src0 = 0;
  u8 src1 = 0;
  u8 src2 = 0;
  u8 aux = 0;
  bool src1_is_imm = false;
  u32 imm = 0;

  CmpOp cmp() const { return static_cast<CmpOp>(aux); }
  AtomicOp atomic() const { return static_cast<AtomicOp>(aux); }
  SpecialReg special() const { return static_cast<SpecialReg>(imm); }
  u32 width() const { return aux; }
};

}  // namespace haccrg::isa
