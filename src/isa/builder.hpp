// Structured kernel assembler. Kernels are authored as C++ code that emits
// mini-PTX instructions; control flow uses structured constructs (if_/
// while_/for_range) that lower onto the interpreter's active-mask stack,
// so divergence is always well-nested — the same guarantee structured CUDA
// source compiled through PDOM reconvergence gives on real hardware.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace haccrg::isa {

/// Opaque handle to a 32-bit register allocated from a builder.
struct Reg {
  u8 idx = 0;
};

/// Opaque handle to a predicate register.
struct Pred {
  u8 idx = 0;
};

/// Right-hand operand: a register or a 32-bit immediate.
struct Operand {
  bool is_imm = false;
  u8 reg = 0;
  u32 imm = 0;

  Operand(Reg r) : reg(r.idx) {}                 // NOLINT(google-explicit-constructor)
  Operand(u32 v) : is_imm(true), imm(v) {}       // NOLINT(google-explicit-constructor)
  Operand(int v) : is_imm(true), imm(u32(v)) {}  // NOLINT(google-explicit-constructor)
};

/// Builds one kernel Program. Register allocation is linear (no reuse);
/// scratch registers can be released in stack order via a scope guard.
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  // --- Register management -------------------------------------------------
  Reg reg();            ///< allocate a fresh register
  Pred pred();          ///< allocate a fresh predicate register
  u32 regs_used() const { return next_reg_; }

  // --- Constants / special values ------------------------------------------
  Reg imm(u32 value);                ///< fresh register preloaded with value
  Reg special(SpecialReg which);     ///< fresh register loaded from a special
  Reg param(u32 slot);               ///< fresh register loaded from launch param

  // --- ALU -------------------------------------------------------------------
  void mov(Reg dst, Operand a);
  void add(Reg dst, Reg a, Operand b);
  void sub(Reg dst, Reg a, Operand b);
  void mul(Reg dst, Reg a, Operand b);
  void mulhi(Reg dst, Reg a, Operand b);
  void div(Reg dst, Reg a, Operand b);
  void rem(Reg dst, Reg a, Operand b);
  void umin(Reg dst, Reg a, Operand b);
  void umax(Reg dst, Reg a, Operand b);
  void and_(Reg dst, Reg a, Operand b);
  void or_(Reg dst, Reg a, Operand b);
  void xor_(Reg dst, Reg a, Operand b);
  void not_(Reg dst, Reg a);
  void shl(Reg dst, Reg a, Operand b);
  void shr(Reg dst, Reg a, Operand b);
  void sra(Reg dst, Reg a, Operand b);

  void fadd(Reg dst, Reg a, Operand b);
  void fsub(Reg dst, Reg a, Operand b);
  void fmul(Reg dst, Reg a, Operand b);
  void fdiv(Reg dst, Reg a, Operand b);
  void fsqrt(Reg dst, Reg a);
  void fmin(Reg dst, Reg a, Operand b);
  void fmax(Reg dst, Reg a, Operand b);
  void fabs_(Reg dst, Reg a);
  void flog(Reg dst, Reg a);
  void fexp(Reg dst, Reg a);
  void i2f(Reg dst, Reg a);
  void f2i(Reg dst, Reg a);

  /// Load a float immediate (bit pattern) into a fresh register.
  Reg fimm(f32 value);

  // --- Predicates ------------------------------------------------------------
  void setp(Pred p, CmpOp op, Reg a, Operand b);
  void sel(Reg dst, Pred p, Reg if_true, Reg if_false);

  // --- Memory ---------------------------------------------------------------
  void ld_global(Reg dst, Reg addr, u32 offset = 0, u32 width = 4);
  void st_global(Reg addr, Reg value, u32 offset = 0, u32 width = 4);
  void ld_shared(Reg dst, Reg addr, u32 offset = 0, u32 width = 4);
  void st_shared(Reg addr, Reg value, u32 offset = 0, u32 width = 4);
  void atom_global(Reg dst, AtomicOp op, Reg addr, Reg operand, u32 offset = 0);
  void atom_global_cas(Reg dst, Reg addr, Reg compare, Reg value, u32 offset = 0);
  void atom_shared(Reg dst, AtomicOp op, Reg addr, Reg operand, u32 offset = 0);

  // --- Synchronization --------------------------------------------------------
  void barrier();
  void memfence();        ///< __threadfence (device scope)
  void memfence_block();  ///< __threadfence_block
  void lock_acquired(Reg lock_addr);  ///< HAccRG marker after lock acquire
  void lock_releasing();              ///< HAccRG marker before lock release
  void exit();

  // --- Structured control flow -------------------------------------------------
  using BodyFn = std::function<void()>;

  /// if (p) { then_body() }
  void if_(Pred p, const BodyFn& then_body);
  /// if (p) { then_body() } else { else_body() }
  void if_else(Pred p, const BodyFn& then_body, const BodyFn& else_body);
  /// while (cond()) { body() } — cond emits code and returns the predicate.
  void while_(const std::function<Pred()>& cond, const BodyFn& body);
  /// do { body() } while (cond()) — at least one iteration per active lane.
  void do_while(const BodyFn& body, const std::function<Pred()>& cond);
  /// for (i = start; i < bound; i += step) { body() }; `i` must be
  /// builder-allocated; bound/step may be registers or immediates.
  void for_range(Reg i, Operand start, Operand bound, Operand step, const BodyFn& body);

  // --- Common idioms -----------------------------------------------------------
  /// dst = base + index*scale (address arithmetic in one call).
  Reg addr(Reg base, Reg index, u32 scale);
  /// Spin until atomicCAS(lock, 0, 1) succeeds, then emit the acquire marker.
  /// WARNING: deadlocks if two lanes of one warp contend for the same lock
  /// (the classic SIMT spinlock hazard); prefer with_lock.
  void spin_lock(Reg lock_addr);
  /// Emit the release marker, a fence, then store 0 to the lock.
  void spin_unlock(Reg lock_addr, bool with_fence = true);
  /// SIMT-safe critical section: loop { if (CAS wins) { acquire marker;
  /// body; release marker; fence; unlock; done } } — lanes that lose the
  /// CAS retry on the next iteration, so intra-warp contention cannot
  /// deadlock. `lock_addr` may differ per lane.
  void with_lock(Reg lock_addr, const BodyFn& body, bool release_fence = true);

  /// Seal the program. Runs Program::validate and aborts on malformed code
  /// (builder bugs are programming errors, not runtime conditions).
  Program build();

  /// Current emit position (used by tests and instrumentation).
  u32 here() const { return static_cast<u32>(code_.size()); }

 private:
  void emit(Instr ins);
  void alu(Opcode op, Reg dst, Reg a, Operand b);
  void alu1(Opcode op, Reg dst, Reg a);

  std::string name_;
  std::vector<Instr> code_;
  u32 next_reg_ = 0;
  u32 next_pred_ = 0;
  int open_scopes_ = 0;
  bool built_ = false;
};

}  // namespace haccrg::isa
