// Opcodes of the mini-PTX ISA executed by the simulator. The set is the
// subset of PTX the paper's benchmarks need: 32-bit integer/float ALU,
// predicated structured control flow, shared/global loads/stores/atomics,
// barriers, memory fences, and the critical-section marker instructions
// HAccRG inserts around lock acquire/release (Section III-B).
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace haccrg::isa {

enum class Opcode : u8 {
  // ALU (integer, 32-bit). src1 may be an immediate.
  kMov,    ///< dst = src0 (or imm)
  kAdd,    ///< dst = src0 + src1
  kSub,    ///< dst = src0 - src1
  kMul,    ///< dst = src0 * src1 (low 32 bits)
  kMulHi,  ///< dst = high 32 bits of u64(src0)*u64(src1)
  kDiv,    ///< dst = src0 / src1 (unsigned; div by 0 -> 0)
  kRem,    ///< dst = src0 % src1 (unsigned; mod by 0 -> 0)
  kMin,    ///< dst = min(src0, src1) (unsigned)
  kMax,    ///< dst = max(src0, src1) (unsigned)
  kAnd,    ///< dst = src0 & src1
  kOr,     ///< dst = src0 | src1
  kXor,    ///< dst = src0 ^ src1
  kNot,    ///< dst = ~src0
  kShl,    ///< dst = src0 << (src1 & 31)
  kShr,    ///< dst = src0 >> (src1 & 31) logical
  kSra,    ///< dst = i32(src0) >> (src1 & 31) arithmetic

  // ALU (IEEE f32 on the register bit pattern).
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  kFSqrt,  ///< dst = sqrt(src0)
  kFMin,
  kFMax,
  kFAbs,  ///< dst = |src0|
  kFLog,  ///< dst = ln(src0)
  kFExp,  ///< dst = e^src0
  kI2F,   ///< dst = f32(i32(src0))
  kF2I,   ///< dst = i32(trunc(f32 src0))

  // Predicates and selection.
  kSetp,  ///< pred[dst] = cmp(src0, src1); aux = CmpOp
  kSel,   ///< dst = pred[aux] ? src0 : src1

  // Special-register / parameter reads. imm selects SpecialReg; for
  // kParam, imm is the parameter slot.
  kSpecial,
  kParam,

  // Structured control flow (vector-machine style active-mask stack).
  kIf,         ///< push mask scope; active &= pred[aux]
  kElse,       ///< active = saved & ~taken
  kEndIf,      ///< pop mask scope
  kLoopBegin,  ///< push loop scope
  kBreakIfNot, ///< active &= pred[aux]; if none active, jump to imm (the kLoopEnd)
  kBreakIf,    ///< active &= ~pred[aux]; if none active, jump to imm
  kJump,       ///< pc = imm (loop back-edge)
  kLoopEnd,    ///< pop loop scope (restores the pre-loop mask)

  // Memory. aux = access width in bytes (1 or 4). Address = src0 + imm.
  kLdGlobal,
  kStGlobal,  ///< mem[src0 + imm] = src1
  kLdShared,
  kStShared,

  // Atomics: dst = old value; address = src0; operand = src1; for CAS the
  // compare value is src2. aux = AtomicOp.
  kAtomGlobal,
  kAtomShared,

  // Synchronization.
  kBar,          ///< block-wide barrier (__syncthreads)
  kMemBar,       ///< device-scope fence (__threadfence); bumps the warp fence ID
  kMemBarBlock,  ///< block-scope fence (__threadfence_block)

  // HAccRG critical-section markers (Section III-B): inserted after lock
  // acquire and before lock release. Acquire adds the lock variable
  // address (in src0) to the thread's Bloom-filter atomic ID; release
  // clears the signature once the outermost lock is released.
  kLockAcqMark,
  kLockRelMark,

  kExit,  ///< thread (warp) terminates
  kNop,
};

/// Comparison operators for kSetp (aux field).
enum class CmpOp : u8 {
  kEq,
  kNe,
  kLtU,
  kLeU,
  kGtU,
  kGeU,
  kLtS,
  kLeS,
  kGtS,
  kGeS,
  kLtF,
  kLeF,
  kGtF,
  kGeF,
  kEqF,
  kNeF,
};

/// Atomic operations for kAtomGlobal / kAtomShared (aux field).
enum class AtomicOp : u8 {
  kAdd,
  kInc,   ///< CUDA atomicInc: old = m; m = (m >= src1) ? 0 : m + 1
  kExch,
  kCas,   ///< if (m == src2) m = src1; returns old
  kMin,
  kMax,
  kAnd,
  kOr,
};

/// Special registers readable via kSpecial (imm field).
enum class SpecialReg : u8 {
  kTid,       ///< thread index within block (x)
  kNTid,      ///< block dimension (threads per block)
  kCtaId,     ///< block index within grid
  kNCtaId,    ///< grid dimension (number of blocks)
  kGTid,      ///< global thread id = ctaid * ntid + tid
  kLane,      ///< lane within warp
  kWarpId,    ///< warp index within block
  kSmId,      ///< hardware SM executing the thread
};

std::string_view opcode_name(Opcode op);
std::string_view cmp_name(CmpOp op);
std::string_view atomic_name(AtomicOp op);

/// True for opcodes that read or write shared/global memory (including
/// atomics) — the set the race-detection instrumentation wraps.
bool is_memory_op(Opcode op);
/// True for global-space memory opcodes.
bool is_global_op(Opcode op);
/// True for shared-space memory opcodes.
bool is_shared_op(Opcode op);
/// True for loads (global or shared).
bool is_load_op(Opcode op);
/// True for atomics (global or shared).
bool is_atomic_op(Opcode op);

/// How an opcode shows up in an access trace (src/trace): every memory or
/// synchronization instruction maps to exactly one event class; pure
/// compute and control flow map to kNone and are never recorded.
enum class TraceEventClass : u8 {
  kNone,
  kSharedLoad,
  kSharedStore,
  kSharedAtomic,
  kGlobalLoad,
  kGlobalStore,
  kGlobalAtomic,
  kBarrier,
  kFence,
  kLockAcquire,
  kLockRelease,
};

TraceEventClass trace_event_class(Opcode op);
std::string_view trace_event_class_name(TraceEventClass c);

}  // namespace haccrg::isa
