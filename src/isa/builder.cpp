#include "isa/builder.hpp"

#include <cstdio>
#include <cstdlib>

namespace haccrg::isa {

namespace {
[[noreturn]] void builder_fatal(const std::string& name, const std::string& msg) {
  std::fprintf(stderr, "KernelBuilder(%s): %s\n", name.c_str(), msg.c_str());
  std::abort();
}
}  // namespace

KernelBuilder::KernelBuilder(std::string name) : name_(std::move(name)) {}

void KernelBuilder::emit(Instr ins) { code_.push_back(ins); }

Reg KernelBuilder::reg() {
  if (next_reg_ >= kMaxRegs) builder_fatal(name_, "out of registers");
  return Reg{static_cast<u8>(next_reg_++)};
}

Pred KernelBuilder::pred() {
  if (next_pred_ >= kMaxPreds) builder_fatal(name_, "out of predicate registers");
  return Pred{static_cast<u8>(next_pred_++)};
}

Reg KernelBuilder::imm(u32 value) {
  Reg r = reg();
  mov(r, Operand(value));
  return r;
}

Reg KernelBuilder::fimm(f32 value) { return imm(as_u32(value)); }

Reg KernelBuilder::special(SpecialReg which) {
  Reg r = reg();
  Instr ins;
  ins.op = Opcode::kSpecial;
  ins.dst = r.idx;
  ins.imm = static_cast<u32>(which);
  emit(ins);
  return r;
}

Reg KernelBuilder::param(u32 slot) {
  if (slot >= kMaxParams) builder_fatal(name_, "parameter slot out of range");
  Reg r = reg();
  Instr ins;
  ins.op = Opcode::kParam;
  ins.dst = r.idx;
  ins.imm = slot;
  emit(ins);
  return r;
}

void KernelBuilder::alu(Opcode op, Reg dst, Reg a, Operand b) {
  Instr ins;
  ins.op = op;
  ins.dst = dst.idx;
  ins.src0 = a.idx;
  if (b.is_imm) {
    ins.src1_is_imm = true;
    ins.imm = b.imm;
  } else {
    ins.src1 = b.reg;
  }
  emit(ins);
}

void KernelBuilder::alu1(Opcode op, Reg dst, Reg a) {
  Instr ins;
  ins.op = op;
  ins.dst = dst.idx;
  ins.src0 = a.idx;
  emit(ins);
}

void KernelBuilder::mov(Reg dst, Operand a) {
  Instr ins;
  ins.op = Opcode::kMov;
  ins.dst = dst.idx;
  if (a.is_imm) {
    ins.src1_is_imm = true;
    ins.imm = a.imm;
  } else {
    ins.src0 = a.reg;
  }
  emit(ins);
}

void KernelBuilder::add(Reg d, Reg a, Operand b) { alu(Opcode::kAdd, d, a, b); }
void KernelBuilder::sub(Reg d, Reg a, Operand b) { alu(Opcode::kSub, d, a, b); }
void KernelBuilder::mul(Reg d, Reg a, Operand b) { alu(Opcode::kMul, d, a, b); }
void KernelBuilder::mulhi(Reg d, Reg a, Operand b) { alu(Opcode::kMulHi, d, a, b); }
void KernelBuilder::div(Reg d, Reg a, Operand b) { alu(Opcode::kDiv, d, a, b); }
void KernelBuilder::rem(Reg d, Reg a, Operand b) { alu(Opcode::kRem, d, a, b); }
void KernelBuilder::umin(Reg d, Reg a, Operand b) { alu(Opcode::kMin, d, a, b); }
void KernelBuilder::umax(Reg d, Reg a, Operand b) { alu(Opcode::kMax, d, a, b); }
void KernelBuilder::and_(Reg d, Reg a, Operand b) { alu(Opcode::kAnd, d, a, b); }
void KernelBuilder::or_(Reg d, Reg a, Operand b) { alu(Opcode::kOr, d, a, b); }
void KernelBuilder::xor_(Reg d, Reg a, Operand b) { alu(Opcode::kXor, d, a, b); }
void KernelBuilder::not_(Reg d, Reg a) { alu1(Opcode::kNot, d, a); }
void KernelBuilder::shl(Reg d, Reg a, Operand b) { alu(Opcode::kShl, d, a, b); }
void KernelBuilder::shr(Reg d, Reg a, Operand b) { alu(Opcode::kShr, d, a, b); }
void KernelBuilder::sra(Reg d, Reg a, Operand b) { alu(Opcode::kSra, d, a, b); }

void KernelBuilder::fadd(Reg d, Reg a, Operand b) { alu(Opcode::kFAdd, d, a, b); }
void KernelBuilder::fsub(Reg d, Reg a, Operand b) { alu(Opcode::kFSub, d, a, b); }
void KernelBuilder::fmul(Reg d, Reg a, Operand b) { alu(Opcode::kFMul, d, a, b); }
void KernelBuilder::fdiv(Reg d, Reg a, Operand b) { alu(Opcode::kFDiv, d, a, b); }
void KernelBuilder::fsqrt(Reg d, Reg a) { alu1(Opcode::kFSqrt, d, a); }
void KernelBuilder::fmin(Reg d, Reg a, Operand b) { alu(Opcode::kFMin, d, a, b); }
void KernelBuilder::fmax(Reg d, Reg a, Operand b) { alu(Opcode::kFMax, d, a, b); }
void KernelBuilder::fabs_(Reg d, Reg a) { alu1(Opcode::kFAbs, d, a); }
void KernelBuilder::flog(Reg d, Reg a) { alu1(Opcode::kFLog, d, a); }
void KernelBuilder::fexp(Reg d, Reg a) { alu1(Opcode::kFExp, d, a); }
void KernelBuilder::i2f(Reg d, Reg a) { alu1(Opcode::kI2F, d, a); }
void KernelBuilder::f2i(Reg d, Reg a) { alu1(Opcode::kF2I, d, a); }

void KernelBuilder::setp(Pred p, CmpOp op, Reg a, Operand b) {
  Instr ins;
  ins.op = Opcode::kSetp;
  ins.dst = p.idx;
  ins.src0 = a.idx;
  ins.aux = static_cast<u8>(op);
  if (b.is_imm) {
    ins.src1_is_imm = true;
    ins.imm = b.imm;
  } else {
    ins.src1 = b.reg;
  }
  emit(ins);
}

void KernelBuilder::sel(Reg dst, Pred p, Reg if_true, Reg if_false) {
  Instr ins;
  ins.op = Opcode::kSel;
  ins.dst = dst.idx;
  ins.src0 = if_true.idx;
  ins.src1 = if_false.idx;
  ins.aux = p.idx;
  emit(ins);
}

void KernelBuilder::ld_global(Reg dst, Reg addr, u32 offset, u32 width) {
  Instr ins;
  ins.op = Opcode::kLdGlobal;
  ins.dst = dst.idx;
  ins.src0 = addr.idx;
  ins.imm = offset;
  ins.aux = static_cast<u8>(width);
  emit(ins);
}

void KernelBuilder::st_global(Reg addr, Reg value, u32 offset, u32 width) {
  Instr ins;
  ins.op = Opcode::kStGlobal;
  ins.src0 = addr.idx;
  ins.src1 = value.idx;
  ins.imm = offset;
  ins.aux = static_cast<u8>(width);
  emit(ins);
}

void KernelBuilder::ld_shared(Reg dst, Reg addr, u32 offset, u32 width) {
  Instr ins;
  ins.op = Opcode::kLdShared;
  ins.dst = dst.idx;
  ins.src0 = addr.idx;
  ins.imm = offset;
  ins.aux = static_cast<u8>(width);
  emit(ins);
}

void KernelBuilder::st_shared(Reg addr, Reg value, u32 offset, u32 width) {
  Instr ins;
  ins.op = Opcode::kStShared;
  ins.src0 = addr.idx;
  ins.src1 = value.idx;
  ins.imm = offset;
  ins.aux = static_cast<u8>(width);
  emit(ins);
}

void KernelBuilder::atom_global(Reg dst, AtomicOp op, Reg addr, Reg operand, u32 offset) {
  Instr ins;
  ins.op = Opcode::kAtomGlobal;
  ins.dst = dst.idx;
  ins.src0 = addr.idx;
  ins.src1 = operand.idx;
  ins.aux = static_cast<u8>(op);
  ins.imm = offset;
  emit(ins);
}

void KernelBuilder::atom_global_cas(Reg dst, Reg addr, Reg compare, Reg value, u32 offset) {
  Instr ins;
  ins.op = Opcode::kAtomGlobal;
  ins.dst = dst.idx;
  ins.src0 = addr.idx;
  ins.src1 = value.idx;
  ins.src2 = compare.idx;
  ins.aux = static_cast<u8>(AtomicOp::kCas);
  ins.imm = offset;
  emit(ins);
}

void KernelBuilder::atom_shared(Reg dst, AtomicOp op, Reg addr, Reg operand, u32 offset) {
  Instr ins;
  ins.op = Opcode::kAtomShared;
  ins.dst = dst.idx;
  ins.src0 = addr.idx;
  ins.src1 = operand.idx;
  ins.aux = static_cast<u8>(op);
  ins.imm = offset;
  emit(ins);
}

void KernelBuilder::barrier() { emit(Instr{.op = Opcode::kBar}); }
void KernelBuilder::memfence() { emit(Instr{.op = Opcode::kMemBar}); }
void KernelBuilder::memfence_block() { emit(Instr{.op = Opcode::kMemBarBlock}); }

void KernelBuilder::lock_acquired(Reg lock_addr) {
  Instr ins;
  ins.op = Opcode::kLockAcqMark;
  ins.src0 = lock_addr.idx;
  emit(ins);
}

void KernelBuilder::lock_releasing() { emit(Instr{.op = Opcode::kLockRelMark}); }
void KernelBuilder::exit() { emit(Instr{.op = Opcode::kExit}); }

void KernelBuilder::if_(Pred p, const BodyFn& then_body) {
  Instr ins;
  ins.op = Opcode::kIf;
  ins.aux = p.idx;
  emit(ins);
  ++open_scopes_;
  then_body();
  emit(Instr{.op = Opcode::kEndIf});
  --open_scopes_;
}

void KernelBuilder::if_else(Pred p, const BodyFn& then_body, const BodyFn& else_body) {
  Instr ins;
  ins.op = Opcode::kIf;
  ins.aux = p.idx;
  emit(ins);
  ++open_scopes_;
  then_body();
  emit(Instr{.op = Opcode::kElse, .aux = p.idx});
  else_body();
  emit(Instr{.op = Opcode::kEndIf});
  --open_scopes_;
}

void KernelBuilder::while_(const std::function<Pred()>& cond, const BodyFn& body) {
  emit(Instr{.op = Opcode::kLoopBegin});
  ++open_scopes_;
  const u32 top = here();
  Pred p = cond();
  Instr brk;
  brk.op = Opcode::kBreakIfNot;
  brk.aux = p.idx;
  const u32 brk_pc = here();
  emit(brk);
  body();
  emit(Instr{.op = Opcode::kJump, .imm = top});
  const u32 end_pc = here();
  emit(Instr{.op = Opcode::kLoopEnd});
  code_[brk_pc].imm = end_pc;
  --open_scopes_;
}

void KernelBuilder::do_while(const BodyFn& body, const std::function<Pred()>& cond) {
  emit(Instr{.op = Opcode::kLoopBegin});
  ++open_scopes_;
  const u32 top = here();
  body();
  Pred p = cond();
  // Loop while p holds: lanes with !p leave; when none remain, fall out.
  Instr brk;
  brk.op = Opcode::kBreakIfNot;
  brk.aux = p.idx;
  const u32 brk_pc = here();
  emit(brk);
  emit(Instr{.op = Opcode::kJump, .imm = top});
  const u32 end_pc = here();
  emit(Instr{.op = Opcode::kLoopEnd});
  code_[brk_pc].imm = end_pc;
  --open_scopes_;
}

void KernelBuilder::for_range(Reg i, Operand start, Operand bound, Operand step,
                              const BodyFn& body) {
  mov(i, start);
  Pred p = pred();
  while_(
      [&] {
        setp(p, CmpOp::kLtU, i, bound);
        return p;
      },
      [&] {
        body();
        add(i, i, step);
      });
}

Reg KernelBuilder::addr(Reg base, Reg index, u32 scale) {
  Reg r = reg();
  mul(r, index, Operand(scale));
  add(r, r, base);
  return r;
}

void KernelBuilder::spin_lock(Reg lock_addr) {
  Reg zero = imm(0);
  Reg one = imm(1);
  Reg old = reg();
  Pred got = pred();
  do_while(
      [&] { atom_global_cas(old, lock_addr, zero, one); },
      [&] {
        setp(got, CmpOp::kNe, old, Operand(0u));
        return got;  // keep looping while the CAS found the lock taken
      });
  lock_acquired(lock_addr);
}

void KernelBuilder::spin_unlock(Reg lock_addr, bool with_fence) {
  lock_releasing();
  if (with_fence) memfence();
  Reg zero = imm(0);
  Reg dummy = reg();
  atom_global(dummy, AtomicOp::kExch, lock_addr, zero);
}

void KernelBuilder::with_lock(Reg lock_addr, const BodyFn& body, bool release_fence) {
  Reg done = imm(0);
  Reg zero = imm(0);
  Reg one = imm(1);
  Reg old = reg();
  Reg dummy = reg();
  Pred keep_trying = pred();
  Pred won = pred();
  while_(
      [&] {
        setp(keep_trying, CmpOp::kEq, done, Operand(0u));
        return keep_trying;
      },
      [&] {
        atom_global_cas(old, lock_addr, zero, one);
        setp(won, CmpOp::kEq, old, Operand(0u));
        if_(won, [&] {
          lock_acquired(lock_addr);
          body();
          lock_releasing();
          if (release_fence) memfence();
          atom_global(dummy, AtomicOp::kExch, lock_addr, zero);
          mov(done, Operand(1u));
        });
      });
}

Program KernelBuilder::build() {
  if (built_) builder_fatal(name_, "build() called twice");
  if (open_scopes_ != 0) builder_fatal(name_, "unclosed control scope at build()");
  built_ = true;
  if (code_.empty() || code_.back().op != Opcode::kExit) emit(Instr{.op = Opcode::kExit});
  Program prog(name_, std::move(code_), next_reg_, next_pred_);
  const std::string err = prog.validate();
  if (!err.empty()) builder_fatal(name_, "invalid program: " + err);
  return prog;
}

}  // namespace haccrg::isa
