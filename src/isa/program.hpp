// A kernel program: a flat instruction vector plus metadata. Programs are
// immutable once sealed by the builder; instrumentation passes produce new
// programs rather than mutating in place.
#pragma once

#include <string>
#include <vector>

#include "isa/instr.hpp"

namespace haccrg::isa {

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instr> code, u32 regs_used, u32 preds_used)
      : name_(std::move(name)), code_(std::move(code)), regs_used_(regs_used),
        preds_used_(preds_used) {}

  const std::string& name() const { return name_; }
  const std::vector<Instr>& code() const { return code_; }
  const Instr& at(u32 pc) const { return code_[pc]; }
  u32 size() const { return static_cast<u32>(code_.size()); }
  bool empty() const { return code_.empty(); }
  u32 regs_used() const { return regs_used_; }
  u32 preds_used() const { return preds_used_; }

  /// Structural well-formedness: balanced control scopes, jump targets in
  /// range, register indices within limits, terminating kExit reachable.
  /// Returns an error description or the empty string.
  std::string validate() const;

  /// Human-readable listing (one instruction per line, pc-prefixed).
  std::string disassemble() const;

  /// Count instructions satisfying a predicate (used by characterization).
  template <typename Fn>
  u32 count_if(Fn&& fn) const {
    u32 n = 0;
    for (const auto& ins : code_)
      if (fn(ins)) ++n;
    return n;
  }

 private:
  std::string name_;
  std::vector<Instr> code_;
  u32 regs_used_ = 0;
  u32 preds_used_ = 0;
};

}  // namespace haccrg::isa
