// ASCII table printer used by the bench harnesses to emit rows in the
// shape of the paper's tables and figures.
#pragma once

#include <string>
#include <vector>

namespace haccrg {

/// Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render the table to a string (aligned columns, header rule).
  std::string render() const;

  /// Convenience: render and write to stdout.
  void print() const;

  /// Format helpers for numeric cells.
  static std::string fmt(double value, int precision = 2);
  static std::string pct(double ratio, int precision = 1);  // 0.27 -> "27.0%"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace haccrg
