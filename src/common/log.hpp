// Minimal leveled logger. The simulator is single-threaded per run, so no
// synchronization is needed; keep the hot path (disabled levels) branch-cheap.
#pragma once

#include <cstdio>
#include <string>

namespace haccrg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_write(LogLevel level, const std::string& msg);
}

template <typename... Args>
void log_at(LogLevel level, const char* fmt, Args... args) {
  if (level < log_level()) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::log_write(level, fmt);
  } else {
    char buf[1024];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    detail::log_write(level, buf);
  }
}

#define HACCRG_LOG_DEBUG(...) ::haccrg::log_at(::haccrg::LogLevel::kDebug, __VA_ARGS__)
#define HACCRG_LOG_INFO(...) ::haccrg::log_at(::haccrg::LogLevel::kInfo, __VA_ARGS__)
#define HACCRG_LOG_WARN(...) ::haccrg::log_at(::haccrg::LogLevel::kWarn, __VA_ARGS__)
#define HACCRG_LOG_ERROR(...) ::haccrg::log_at(::haccrg::LogLevel::kError, __VA_ARGS__)

}  // namespace haccrg
