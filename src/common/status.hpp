// Structured error type for user-reachable failure paths (config
// validation, environment parsing, trace decode, CLI handling). Code
// that can be fed malformed input returns a Status instead of aborting
// or throwing, so every caller — tests, the CLI, the fuzz harnesses —
// can branch on the failure class and render the message.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "common/types.hpp"

namespace haccrg {

/// Failure class. The CLI maps these to distinct exit codes, so the
/// order is part of the tool's documented interface — append only.
enum class StatusCode : u8 {
  kOk = 0,
  kInvalidArgument,   ///< bad config value / malformed env var or flag
  kNotFound,          ///< a named input (file, kernel, key) doesn't exist
  kIoError,           ///< the OS failed a read/write that should work
  kBadMagic,          ///< input is not the expected file format at all
  kVersionMismatch,   ///< right format, wrong version
  kCorrupt,           ///< right format+version, damaged content
  kUnavailable,       ///< a bounded resource is full right now; retry later
  kDeadlineExceeded,  ///< work was cancelled because its deadline passed
};

std::string_view status_code_name(StatusCode code);

class Status {
 public:
  /// Default-constructed Status is success.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>" for logs and stderr.
  std::string to_string() const {
    if (ok()) return "ok";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status not_found(std::string msg) { return {StatusCode::kNotFound, std::move(msg)}; }
  static Status io_error(std::string msg) { return {StatusCode::kIoError, std::move(msg)}; }
  static Status bad_magic(std::string msg) { return {StatusCode::kBadMagic, std::move(msg)}; }
  static Status version_mismatch(std::string msg) {
    return {StatusCode::kVersionMismatch, std::move(msg)};
  }
  static Status corrupt(std::string msg) { return {StatusCode::kCorrupt, std::move(msg)}; }
  static Status unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status deadline_exceeded(std::string msg) {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kIoError: return "i/o error";
    case StatusCode::kBadMagic: return "bad magic";
    case StatusCode::kVersionMismatch: return "version mismatch";
    case StatusCode::kCorrupt: return "corrupt";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDeadlineExceeded: return "deadline exceeded";
  }
  return "?";
}

}  // namespace haccrg
