#include "common/table.hpp"

#include <cstdio>
#include <sstream>

namespace haccrg {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };

  emit_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) out << std::string(widths[c] + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

std::string TablePrinter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

}  // namespace haccrg
