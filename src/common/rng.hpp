// Deterministic pseudo-random generators. SplitMix64 drives host-side
// workload generation; Lcg32 matches the in-kernel generator used by the
// MCARLO benchmark (the kernel computes the identical recurrence in ISA
// code, so host reference checks can replay it exactly).
#pragma once

#include "common/types.hpp"

namespace haccrg {

/// SplitMix64: fast, well-distributed 64-bit generator for workloads.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    u64 z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  u32 next_below(u32 bound) { return bound == 0 ? 0 : static_cast<u32>(next() % bound); }

  /// Uniform float in [0, 1).
  f32 next_f32() { return static_cast<f32>(next() >> 40) * (1.0f / 16777216.0f); }

 private:
  u64 state_;
};

/// 32-bit LCG (numerical recipes constants); identical recurrence is
/// emitted as ISA code inside the MCARLO kernel.
class Lcg32 {
 public:
  explicit Lcg32(u32 seed) : state_(seed) {}

  static constexpr u32 kMul = 1664525u;
  static constexpr u32 kAdd = 1013904223u;

  u32 next() {
    state_ = state_ * kMul + kAdd;
    return state_;
  }

  /// Uniform float in [0, 1) from the high 24 bits.
  f32 next_f32() { return static_cast<f32>(next() >> 8) * (1.0f / 16777216.0f); }

 private:
  u32 state_;
};

}  // namespace haccrg
