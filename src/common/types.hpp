// Fixed-width aliases and small numeric helpers used across the simulator.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace haccrg {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/// Simulated device address (global memory space).
using Addr = u32;
/// Simulation time in core clock cycles.
using Cycle = u64;

/// Reinterpret a 32-bit integer as IEEE float (PTX-style register view).
inline f32 as_f32(u32 bits) { return std::bit_cast<f32>(bits); }
/// Reinterpret an IEEE float as its 32-bit pattern.
inline u32 as_u32(f32 value) { return std::bit_cast<u32>(value); }

/// True if `v` is a power of two (zero is not).
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr u32 log2_pow2(u64 v) {
  u32 n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

/// Round `v` up to the next multiple of `align` (align must be pow2).
constexpr u64 align_up(u64 v, u64 align) { return (v + align - 1) & ~(align - 1); }

/// Integer ceiling division.
constexpr u64 ceil_div(u64 a, u64 b) { return (a + b - 1) / b; }

}  // namespace haccrg
