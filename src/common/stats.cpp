#include "common/stats.hpp"

#include <cmath>

namespace haccrg {

std::string StatSet::serialize() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

u64 StatSet::fingerprint() const {
  u64 hash = 14695981039346656037ULL;
  for (char c : serialize()) {
    hash ^= static_cast<u8>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

f64 mean(const std::vector<f64>& values) {
  if (values.empty()) return 0.0;
  f64 sum = 0.0;
  for (f64 v : values) sum += v;
  return sum / static_cast<f64>(values.size());
}

f64 geomean(const std::vector<f64>& values) {
  if (values.empty()) return 0.0;
  f64 log_sum = 0.0;
  for (f64 v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<f64>(values.size()));
}

f64 stddev(const std::vector<f64>& values) {
  if (values.size() < 2) return 0.0;
  const f64 m = mean(values);
  f64 acc = 0.0;
  for (f64 v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<f64>(values.size() - 1));
}

}  // namespace haccrg
