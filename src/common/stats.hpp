// Named-counter statistics registry plus small numeric summaries
// (mean / geomean) used by the benchmark harnesses.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace haccrg {

/// A bag of named 64-bit counters. Each simulator component owns one and
/// merges it into the run-level report when the simulation finishes.
class StatSet {
 public:
  void add(const std::string& name, u64 delta = 1) { counters_[name] += delta; }
  void set(const std::string& name, u64 value) { counters_[name] = value; }
  u64 get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  bool has(const std::string& name) const { return counters_.count(name) != 0; }
  void merge(const StatSet& other, const std::string& prefix = "") {
    for (const auto& [k, v] : other.counters_) counters_[prefix + k] += v;
  }
  void clear() { counters_.clear(); }
  const std::map<std::string, u64>& counters() const { return counters_; }

  /// Canonical text form: one "name value\n" line per counter, sorted by
  /// name (the map order). Stable across platforms, so it is what the
  /// determinism tests compare byte-for-byte and what the golden-stats
  /// snapshot files store.
  std::string serialize() const;

  /// FNV-1a hash of serialize(); cheap equality token for comparing runs.
  u64 fingerprint() const;

 private:
  std::map<std::string, u64> counters_;
};

/// Arithmetic mean; 0 for an empty vector.
f64 mean(const std::vector<f64>& values);

/// Geometric mean; 0 for an empty vector. Values must be positive.
f64 geomean(const std::vector<f64>& values);

/// Sample standard deviation; 0 when fewer than two values.
f64 stddev(const std::vector<f64>& values);

}  // namespace haccrg
