# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_basic[1]_include.cmake")
include("/root/repo/build/tests/test_detection_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_injection[1]_include.cmake")
include("/root/repo/build/tests/test_swrace[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_builder[1]_include.cmake")
include("/root/repo/build/tests/test_state_machine[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_haccrg_units[1]_include.cmake")
include("/root/repo/build/tests/test_rewriter[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_sim_timing[1]_include.cmake")
include("/root/repo/build/tests/test_config_invariants[1]_include.cmake")
