# Empty dependencies file for test_config_invariants.
# This may be replaced when dependencies are built.
