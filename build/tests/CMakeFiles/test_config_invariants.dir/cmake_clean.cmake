file(REMOVE_RECURSE
  "CMakeFiles/test_config_invariants.dir/test_config_invariants.cpp.o"
  "CMakeFiles/test_config_invariants.dir/test_config_invariants.cpp.o.d"
  "test_config_invariants"
  "test_config_invariants.pdb"
  "test_config_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
