# Empty compiler generated dependencies file for test_sim_timing.
# This may be replaced when dependencies are built.
