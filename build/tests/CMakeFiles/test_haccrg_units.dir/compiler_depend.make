# Empty compiler generated dependencies file for test_haccrg_units.
# This may be replaced when dependencies are built.
