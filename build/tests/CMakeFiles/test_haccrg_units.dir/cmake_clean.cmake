file(REMOVE_RECURSE
  "CMakeFiles/test_haccrg_units.dir/test_haccrg_units.cpp.o"
  "CMakeFiles/test_haccrg_units.dir/test_haccrg_units.cpp.o.d"
  "test_haccrg_units"
  "test_haccrg_units.pdb"
  "test_haccrg_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_haccrg_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
