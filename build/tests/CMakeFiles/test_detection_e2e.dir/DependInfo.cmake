
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_detection_e2e.cpp" "tests/CMakeFiles/test_detection_e2e.dir/test_detection_e2e.cpp.o" "gcc" "tests/CMakeFiles/test_detection_e2e.dir/test_detection_e2e.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swrace/CMakeFiles/haccrg_swrace.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/haccrg_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/haccrg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/haccrg/CMakeFiles/haccrg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/haccrg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/haccrg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/haccrg_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/haccrg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
