# Empty dependencies file for test_detection_e2e.
# This may be replaced when dependencies are built.
