file(REMOVE_RECURSE
  "CMakeFiles/test_swrace.dir/test_swrace.cpp.o"
  "CMakeFiles/test_swrace.dir/test_swrace.cpp.o.d"
  "test_swrace"
  "test_swrace.pdb"
  "test_swrace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
