# Empty compiler generated dependencies file for test_swrace.
# This may be replaced when dependencies are built.
