# Empty dependencies file for lockset_discipline.
# This may be replaced when dependencies are built.
