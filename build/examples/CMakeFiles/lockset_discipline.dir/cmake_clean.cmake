file(REMOVE_RECURSE
  "CMakeFiles/lockset_discipline.dir/lockset_discipline.cpp.o"
  "CMakeFiles/lockset_discipline.dir/lockset_discipline.cpp.o.d"
  "lockset_discipline"
  "lockset_discipline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockset_discipline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
