file(REMOVE_RECURSE
  "CMakeFiles/granularity_tradeoff.dir/granularity_tradeoff.cpp.o"
  "CMakeFiles/granularity_tradeoff.dir/granularity_tradeoff.cpp.o.d"
  "granularity_tradeoff"
  "granularity_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
