# Empty dependencies file for granularity_tradeoff.
# This may be replaced when dependencies are built.
