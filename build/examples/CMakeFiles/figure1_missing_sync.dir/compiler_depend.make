# Empty compiler generated dependencies file for figure1_missing_sync.
# This may be replaced when dependencies are built.
