file(REMOVE_RECURSE
  "CMakeFiles/figure1_missing_sync.dir/figure1_missing_sync.cpp.o"
  "CMakeFiles/figure1_missing_sync.dir/figure1_missing_sync.cpp.o.d"
  "figure1_missing_sync"
  "figure1_missing_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_missing_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
