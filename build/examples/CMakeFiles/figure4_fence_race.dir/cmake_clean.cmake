file(REMOVE_RECURSE
  "CMakeFiles/figure4_fence_race.dir/figure4_fence_race.cpp.o"
  "CMakeFiles/figure4_fence_race.dir/figure4_fence_race.cpp.o.d"
  "figure4_fence_race"
  "figure4_fence_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_fence_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
