# Empty dependencies file for figure4_fence_race.
# This may be replaced when dependencies are built.
