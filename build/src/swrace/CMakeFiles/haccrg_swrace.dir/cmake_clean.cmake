file(REMOVE_RECURSE
  "CMakeFiles/haccrg_swrace.dir/grace.cpp.o"
  "CMakeFiles/haccrg_swrace.dir/grace.cpp.o.d"
  "CMakeFiles/haccrg_swrace.dir/rewriter.cpp.o"
  "CMakeFiles/haccrg_swrace.dir/rewriter.cpp.o.d"
  "CMakeFiles/haccrg_swrace.dir/sw_haccrg.cpp.o"
  "CMakeFiles/haccrg_swrace.dir/sw_haccrg.cpp.o.d"
  "libhaccrg_swrace.a"
  "libhaccrg_swrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccrg_swrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
