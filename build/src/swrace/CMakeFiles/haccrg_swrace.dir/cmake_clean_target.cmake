file(REMOVE_RECURSE
  "libhaccrg_swrace.a"
)
