# Empty compiler generated dependencies file for haccrg_swrace.
# This may be replaced when dependencies are built.
