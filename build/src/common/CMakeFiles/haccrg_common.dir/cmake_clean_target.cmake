file(REMOVE_RECURSE
  "libhaccrg_common.a"
)
