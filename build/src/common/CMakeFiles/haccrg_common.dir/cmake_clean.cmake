file(REMOVE_RECURSE
  "CMakeFiles/haccrg_common.dir/log.cpp.o"
  "CMakeFiles/haccrg_common.dir/log.cpp.o.d"
  "CMakeFiles/haccrg_common.dir/stats.cpp.o"
  "CMakeFiles/haccrg_common.dir/stats.cpp.o.d"
  "CMakeFiles/haccrg_common.dir/table.cpp.o"
  "CMakeFiles/haccrg_common.dir/table.cpp.o.d"
  "libhaccrg_common.a"
  "libhaccrg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccrg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
