# Empty dependencies file for haccrg_common.
# This may be replaced when dependencies are built.
