file(REMOVE_RECURSE
  "libhaccrg_arch.a"
)
