file(REMOVE_RECURSE
  "CMakeFiles/haccrg_arch.dir/config.cpp.o"
  "CMakeFiles/haccrg_arch.dir/config.cpp.o.d"
  "libhaccrg_arch.a"
  "libhaccrg_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccrg_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
