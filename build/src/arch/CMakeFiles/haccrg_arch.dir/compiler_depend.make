# Empty compiler generated dependencies file for haccrg_arch.
# This may be replaced when dependencies are built.
