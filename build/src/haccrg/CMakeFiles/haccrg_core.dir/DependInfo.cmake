
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/haccrg/bloom.cpp" "src/haccrg/CMakeFiles/haccrg_core.dir/bloom.cpp.o" "gcc" "src/haccrg/CMakeFiles/haccrg_core.dir/bloom.cpp.o.d"
  "/root/repo/src/haccrg/global_rdu.cpp" "src/haccrg/CMakeFiles/haccrg_core.dir/global_rdu.cpp.o" "gcc" "src/haccrg/CMakeFiles/haccrg_core.dir/global_rdu.cpp.o.d"
  "/root/repo/src/haccrg/hardware_cost.cpp" "src/haccrg/CMakeFiles/haccrg_core.dir/hardware_cost.cpp.o" "gcc" "src/haccrg/CMakeFiles/haccrg_core.dir/hardware_cost.cpp.o.d"
  "/root/repo/src/haccrg/options.cpp" "src/haccrg/CMakeFiles/haccrg_core.dir/options.cpp.o" "gcc" "src/haccrg/CMakeFiles/haccrg_core.dir/options.cpp.o.d"
  "/root/repo/src/haccrg/race.cpp" "src/haccrg/CMakeFiles/haccrg_core.dir/race.cpp.o" "gcc" "src/haccrg/CMakeFiles/haccrg_core.dir/race.cpp.o.d"
  "/root/repo/src/haccrg/shadow.cpp" "src/haccrg/CMakeFiles/haccrg_core.dir/shadow.cpp.o" "gcc" "src/haccrg/CMakeFiles/haccrg_core.dir/shadow.cpp.o.d"
  "/root/repo/src/haccrg/shared_rdu.cpp" "src/haccrg/CMakeFiles/haccrg_core.dir/shared_rdu.cpp.o" "gcc" "src/haccrg/CMakeFiles/haccrg_core.dir/shared_rdu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/haccrg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/haccrg_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/haccrg_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
