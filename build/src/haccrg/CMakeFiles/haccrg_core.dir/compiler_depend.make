# Empty compiler generated dependencies file for haccrg_core.
# This may be replaced when dependencies are built.
