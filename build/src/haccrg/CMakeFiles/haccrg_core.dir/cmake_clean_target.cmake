file(REMOVE_RECURSE
  "libhaccrg_core.a"
)
