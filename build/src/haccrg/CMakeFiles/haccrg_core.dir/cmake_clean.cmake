file(REMOVE_RECURSE
  "CMakeFiles/haccrg_core.dir/bloom.cpp.o"
  "CMakeFiles/haccrg_core.dir/bloom.cpp.o.d"
  "CMakeFiles/haccrg_core.dir/global_rdu.cpp.o"
  "CMakeFiles/haccrg_core.dir/global_rdu.cpp.o.d"
  "CMakeFiles/haccrg_core.dir/hardware_cost.cpp.o"
  "CMakeFiles/haccrg_core.dir/hardware_cost.cpp.o.d"
  "CMakeFiles/haccrg_core.dir/options.cpp.o"
  "CMakeFiles/haccrg_core.dir/options.cpp.o.d"
  "CMakeFiles/haccrg_core.dir/race.cpp.o"
  "CMakeFiles/haccrg_core.dir/race.cpp.o.d"
  "CMakeFiles/haccrg_core.dir/shadow.cpp.o"
  "CMakeFiles/haccrg_core.dir/shadow.cpp.o.d"
  "CMakeFiles/haccrg_core.dir/shared_rdu.cpp.o"
  "CMakeFiles/haccrg_core.dir/shared_rdu.cpp.o.d"
  "libhaccrg_core.a"
  "libhaccrg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccrg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
