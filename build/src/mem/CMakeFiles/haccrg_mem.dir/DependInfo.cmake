
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/haccrg_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/haccrg_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/coalescer.cpp" "src/mem/CMakeFiles/haccrg_mem.dir/coalescer.cpp.o" "gcc" "src/mem/CMakeFiles/haccrg_mem.dir/coalescer.cpp.o.d"
  "/root/repo/src/mem/device_memory.cpp" "src/mem/CMakeFiles/haccrg_mem.dir/device_memory.cpp.o" "gcc" "src/mem/CMakeFiles/haccrg_mem.dir/device_memory.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/mem/CMakeFiles/haccrg_mem.dir/dram.cpp.o" "gcc" "src/mem/CMakeFiles/haccrg_mem.dir/dram.cpp.o.d"
  "/root/repo/src/mem/interconnect.cpp" "src/mem/CMakeFiles/haccrg_mem.dir/interconnect.cpp.o" "gcc" "src/mem/CMakeFiles/haccrg_mem.dir/interconnect.cpp.o.d"
  "/root/repo/src/mem/partition.cpp" "src/mem/CMakeFiles/haccrg_mem.dir/partition.cpp.o" "gcc" "src/mem/CMakeFiles/haccrg_mem.dir/partition.cpp.o.d"
  "/root/repo/src/mem/shared_memory.cpp" "src/mem/CMakeFiles/haccrg_mem.dir/shared_memory.cpp.o" "gcc" "src/mem/CMakeFiles/haccrg_mem.dir/shared_memory.cpp.o.d"
  "/root/repo/src/mem/tlb.cpp" "src/mem/CMakeFiles/haccrg_mem.dir/tlb.cpp.o" "gcc" "src/mem/CMakeFiles/haccrg_mem.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/haccrg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/haccrg_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
