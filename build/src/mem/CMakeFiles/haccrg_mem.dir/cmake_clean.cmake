file(REMOVE_RECURSE
  "CMakeFiles/haccrg_mem.dir/cache.cpp.o"
  "CMakeFiles/haccrg_mem.dir/cache.cpp.o.d"
  "CMakeFiles/haccrg_mem.dir/coalescer.cpp.o"
  "CMakeFiles/haccrg_mem.dir/coalescer.cpp.o.d"
  "CMakeFiles/haccrg_mem.dir/device_memory.cpp.o"
  "CMakeFiles/haccrg_mem.dir/device_memory.cpp.o.d"
  "CMakeFiles/haccrg_mem.dir/dram.cpp.o"
  "CMakeFiles/haccrg_mem.dir/dram.cpp.o.d"
  "CMakeFiles/haccrg_mem.dir/interconnect.cpp.o"
  "CMakeFiles/haccrg_mem.dir/interconnect.cpp.o.d"
  "CMakeFiles/haccrg_mem.dir/partition.cpp.o"
  "CMakeFiles/haccrg_mem.dir/partition.cpp.o.d"
  "CMakeFiles/haccrg_mem.dir/shared_memory.cpp.o"
  "CMakeFiles/haccrg_mem.dir/shared_memory.cpp.o.d"
  "CMakeFiles/haccrg_mem.dir/tlb.cpp.o"
  "CMakeFiles/haccrg_mem.dir/tlb.cpp.o.d"
  "libhaccrg_mem.a"
  "libhaccrg_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccrg_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
