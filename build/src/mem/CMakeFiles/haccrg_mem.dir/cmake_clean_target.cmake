file(REMOVE_RECURSE
  "libhaccrg_mem.a"
)
