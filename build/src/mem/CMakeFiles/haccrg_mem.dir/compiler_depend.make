# Empty compiler generated dependencies file for haccrg_mem.
# This may be replaced when dependencies are built.
