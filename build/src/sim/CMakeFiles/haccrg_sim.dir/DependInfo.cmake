
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/gpu.cpp" "src/sim/CMakeFiles/haccrg_sim.dir/gpu.cpp.o" "gcc" "src/sim/CMakeFiles/haccrg_sim.dir/gpu.cpp.o.d"
  "/root/repo/src/sim/sm.cpp" "src/sim/CMakeFiles/haccrg_sim.dir/sm.cpp.o" "gcc" "src/sim/CMakeFiles/haccrg_sim.dir/sm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/haccrg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/haccrg_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/haccrg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/haccrg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/haccrg/CMakeFiles/haccrg_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
