# Empty dependencies file for haccrg_sim.
# This may be replaced when dependencies are built.
