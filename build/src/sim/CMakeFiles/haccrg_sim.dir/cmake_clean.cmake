file(REMOVE_RECURSE
  "CMakeFiles/haccrg_sim.dir/gpu.cpp.o"
  "CMakeFiles/haccrg_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/haccrg_sim.dir/sm.cpp.o"
  "CMakeFiles/haccrg_sim.dir/sm.cpp.o.d"
  "libhaccrg_sim.a"
  "libhaccrg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccrg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
