file(REMOVE_RECURSE
  "libhaccrg_sim.a"
)
