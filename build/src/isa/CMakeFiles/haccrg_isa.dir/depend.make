# Empty dependencies file for haccrg_isa.
# This may be replaced when dependencies are built.
