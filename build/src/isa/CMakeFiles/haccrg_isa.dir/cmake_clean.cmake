file(REMOVE_RECURSE
  "CMakeFiles/haccrg_isa.dir/builder.cpp.o"
  "CMakeFiles/haccrg_isa.dir/builder.cpp.o.d"
  "CMakeFiles/haccrg_isa.dir/opcode.cpp.o"
  "CMakeFiles/haccrg_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/haccrg_isa.dir/program.cpp.o"
  "CMakeFiles/haccrg_isa.dir/program.cpp.o.d"
  "libhaccrg_isa.a"
  "libhaccrg_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccrg_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
