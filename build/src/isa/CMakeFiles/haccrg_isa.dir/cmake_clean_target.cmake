file(REMOVE_RECURSE
  "libhaccrg_isa.a"
)
