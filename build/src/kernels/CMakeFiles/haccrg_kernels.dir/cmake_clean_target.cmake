file(REMOVE_RECURSE
  "libhaccrg_kernels.a"
)
