# Empty compiler generated dependencies file for haccrg_kernels.
# This may be replaced when dependencies are built.
