
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/common.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/common.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/common.cpp.o.d"
  "/root/repo/src/kernels/fwalsh.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/fwalsh.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/fwalsh.cpp.o.d"
  "/root/repo/src/kernels/hash.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/hash.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/hash.cpp.o.d"
  "/root/repo/src/kernels/hist.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/hist.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/hist.cpp.o.d"
  "/root/repo/src/kernels/injection.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/injection.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/injection.cpp.o.d"
  "/root/repo/src/kernels/kmeans.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/kmeans.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/kmeans.cpp.o.d"
  "/root/repo/src/kernels/mcarlo.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/mcarlo.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/mcarlo.cpp.o.d"
  "/root/repo/src/kernels/offt.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/offt.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/offt.cpp.o.d"
  "/root/repo/src/kernels/psum.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/psum.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/psum.cpp.o.d"
  "/root/repo/src/kernels/reduce.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/reduce.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/reduce.cpp.o.d"
  "/root/repo/src/kernels/registry.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/registry.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/registry.cpp.o.d"
  "/root/repo/src/kernels/scan.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/scan.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/scan.cpp.o.d"
  "/root/repo/src/kernels/sortnw.cpp" "src/kernels/CMakeFiles/haccrg_kernels.dir/sortnw.cpp.o" "gcc" "src/kernels/CMakeFiles/haccrg_kernels.dir/sortnw.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/haccrg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/haccrg_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/haccrg/CMakeFiles/haccrg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/haccrg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/haccrg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/haccrg_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
