file(REMOVE_RECURSE
  "CMakeFiles/haccrg_kernels.dir/common.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/common.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/fwalsh.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/fwalsh.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/hash.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/hash.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/hist.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/hist.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/injection.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/injection.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/kmeans.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/kmeans.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/mcarlo.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/mcarlo.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/offt.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/offt.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/psum.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/psum.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/reduce.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/reduce.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/registry.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/registry.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/scan.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/scan.cpp.o.d"
  "CMakeFiles/haccrg_kernels.dir/sortnw.cpp.o"
  "CMakeFiles/haccrg_kernels.dir/sortnw.cpp.o.d"
  "libhaccrg_kernels.a"
  "libhaccrg_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haccrg_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
