file(REMOVE_RECURSE
  "CMakeFiles/bench_bloom_accuracy.dir/bench_bloom_accuracy.cpp.o"
  "CMakeFiles/bench_bloom_accuracy.dir/bench_bloom_accuracy.cpp.o.d"
  "bench_bloom_accuracy"
  "bench_bloom_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bloom_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
