# Empty dependencies file for bench_bloom_accuracy.
# This may be replaced when dependencies are built.
