# Empty compiler generated dependencies file for bench_fig9_dram_bandwidth.
# This may be replaced when dependencies are built.
