# Empty compiler generated dependencies file for bench_table4_shadow_overhead.
# This may be replaced when dependencies are built.
