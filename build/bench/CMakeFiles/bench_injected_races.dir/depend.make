# Empty dependencies file for bench_injected_races.
# This may be replaced when dependencies are built.
