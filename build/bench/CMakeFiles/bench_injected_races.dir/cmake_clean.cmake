file(REMOVE_RECURSE
  "CMakeFiles/bench_injected_races.dir/bench_injected_races.cpp.o"
  "CMakeFiles/bench_injected_races.dir/bench_injected_races.cpp.o.d"
  "bench_injected_races"
  "bench_injected_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_injected_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
