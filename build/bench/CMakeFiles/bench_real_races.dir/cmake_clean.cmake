file(REMOVE_RECURSE
  "CMakeFiles/bench_real_races.dir/bench_real_races.cpp.o"
  "CMakeFiles/bench_real_races.dir/bench_real_races.cpp.o.d"
  "bench_real_races"
  "bench_real_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_real_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
