# Empty compiler generated dependencies file for bench_real_races.
# This may be replaced when dependencies are built.
