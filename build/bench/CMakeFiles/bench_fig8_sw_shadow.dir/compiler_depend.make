# Empty compiler generated dependencies file for bench_fig8_sw_shadow.
# This may be replaced when dependencies are built.
