file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sw_shadow.dir/bench_fig8_sw_shadow.cpp.o"
  "CMakeFiles/bench_fig8_sw_shadow.dir/bench_fig8_sw_shadow.cpp.o.d"
  "bench_fig8_sw_shadow"
  "bench_fig8_sw_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sw_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
