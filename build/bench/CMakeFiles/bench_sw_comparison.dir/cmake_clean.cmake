file(REMOVE_RECURSE
  "CMakeFiles/bench_sw_comparison.dir/bench_sw_comparison.cpp.o"
  "CMakeFiles/bench_sw_comparison.dir/bench_sw_comparison.cpp.o.d"
  "bench_sw_comparison"
  "bench_sw_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sw_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
