file(REMOVE_RECURSE
  "CMakeFiles/bench_tlb_virtual_memory.dir/bench_tlb_virtual_memory.cpp.o"
  "CMakeFiles/bench_tlb_virtual_memory.dir/bench_tlb_virtual_memory.cpp.o.d"
  "bench_tlb_virtual_memory"
  "bench_tlb_virtual_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tlb_virtual_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
