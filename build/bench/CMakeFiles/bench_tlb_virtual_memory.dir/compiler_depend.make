# Empty compiler generated dependencies file for bench_tlb_virtual_memory.
# This may be replaced when dependencies are built.
