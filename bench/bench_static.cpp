// Static-verifier precision: the PR-1 straight-line pair test vs the
// loop-aware dependence solver with launch geometry. Two tables:
//
//   1. Per-kernel classification counts for both modes, over all ten
//      registry kernels. Loop-aware must never classify fewer accesses
//      safe (monotonicity), and must classify strictly more on at least
//      one kernel (the whole point of the upgrade).
//   2. For the kernels that improved, the downstream effect on software
//      instrumentation: sites instrumented and run cycles with the old
//      report vs the new one. Both must strictly decrease.
//
// Writes BENCH_static.json; exits 1 when either gate fails.
//
//   bench_static [--json BENCH_static.json]
#include <cstring>
#include <fstream>

#include "bench/harness.hpp"
#include "swrace/sw_haccrg.hpp"

namespace {

using namespace haccrg;

struct StaticPoint {
  std::string name;
  u32 accesses = 0;
  u32 safe_old = 0, safe_new = 0;
  u32 witnesses = 0;  ///< unsafe accesses carrying a concrete witness
  // Filled for improved kernels only.
  bool measured = false;
  u32 sites_old = 0, sites_new = 0;
  Cycle cycles_old = 0, cycles_new = 0;

  bool improved() const { return safe_new > safe_old; }
};

analysis::AnalyzeOptions old_options() {
  analysis::AnalyzeOptions o;
  o.loop_aware = false;
  return o;
}

analysis::AnalyzeOptions new_options(const kernels::PreparedKernel& prep) {
  analysis::AnalyzeOptions o;
  o.block_dim = prep.block_dim;
  o.grid_dim = prep.grid_dim;
  return o;
}

/// One software-HAccRG run instrumented against `report`; returns the
/// instrumented-site count and cycles.
std::pair<u32, Cycle> sw_run(const std::string& name, const analysis::StaticRaceReport& report) {
  sim::Gpu gpu(bench::experiment_gpu(), bench::detection_off());
  kernels::BenchOptions opts;
  opts.scale = bench::kExperimentScale;
  kernels::PreparedKernel prep = kernels::find_benchmark(name)->prepare(gpu, opts);
  swrace::InstrumentOptions iopts;
  iopts.report = &report;
  swrace::InstrumentStats stats;
  swrace::attach_sw_haccrg(gpu, prep, iopts, &stats);
  sim::SimResult r = gpu.launch(prep.launch());
  if (!r.completed) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(), r.error.c_str());
    std::abort();
  }
  return {stats.sites_instrumented, r.cycles};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace haccrg;
  std::string json_path = "BENCH_static.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  bench::print_header("Loop-aware static race verification",
                      "the analysis front-end of the static-filter ablation");

  std::vector<StaticPoint> points;
  bool monotone = true;
  for (const auto& info : kernels::all_benchmarks()) {
    sim::Gpu gpu(bench::experiment_gpu(), bench::detection_off());
    kernels::BenchOptions opts;
    opts.scale = bench::kExperimentScale;
    kernels::PreparedKernel prep = info.prepare(gpu, opts);
    const auto r0 = analysis::analyze(prep.program, old_options());
    const auto r1 = analysis::analyze(prep.program, new_options(prep));
    StaticPoint pt;
    pt.name = info.name;
    pt.accesses = static_cast<u32>(r0.accesses.size());
    pt.safe_old = r0.count(analysis::AccessClass::kProvablySafe);
    pt.safe_new = r1.count(analysis::AccessClass::kProvablySafe);
    for (const analysis::StaticAccess& a : r1.accesses)
      if (a.cls != analysis::AccessClass::kProvablySafe && a.witness.found) ++pt.witnesses;
    // Monotonicity: anything the straight-line test proved must stay
    // proven under the loop-aware test.
    for (u32 pc = 0; pc < r0.classes.size(); ++pc)
      if (r0.is_safe(pc) && !r1.is_safe(pc)) monotone = false;
    points.push_back(pt);
  }

  TablePrinter table({"Benchmark", "Accesses", "Safe (PR-1)", "Safe (loop-aware)", "Witnesses"});
  u32 improved_kernels = 0;
  for (const StaticPoint& pt : points) {
    table.add_row({pt.name, std::to_string(pt.accesses), std::to_string(pt.safe_old),
                   std::to_string(pt.safe_new) + (pt.improved() ? " (+)" : ""),
                   std::to_string(pt.witnesses)});
    if (pt.improved()) ++improved_kernels;
  }
  table.print();

  bench::print_header("Downstream pruning effect on software HAccRG",
                      "instrumented sites and cycles, old report vs new");
  TablePrinter effect({"Benchmark", "Sites (old)", "Sites (new)", "Cycles (old)", "Cycles (new)"});
  bool strict_ok = improved_kernels > 0;
  for (StaticPoint& pt : points) {
    if (!pt.improved()) continue;
    sim::Gpu gpu(bench::experiment_gpu(), bench::detection_off());
    kernels::BenchOptions opts;
    opts.scale = bench::kExperimentScale;
    kernels::PreparedKernel prep = kernels::find_benchmark(pt.name)->prepare(gpu, opts);
    const auto r0 = analysis::analyze(prep.program, old_options());
    const auto r1 = analysis::analyze(prep.program, new_options(prep));
    std::tie(pt.sites_old, pt.cycles_old) = sw_run(pt.name, r0);
    std::tie(pt.sites_new, pt.cycles_new) = sw_run(pt.name, r1);
    pt.measured = true;
    effect.add_row({pt.name, std::to_string(pt.sites_old), std::to_string(pt.sites_new),
                    std::to_string(pt.cycles_old), std::to_string(pt.cycles_new)});
    if (pt.sites_new >= pt.sites_old || pt.cycles_new >= pt.cycles_old) strict_ok = false;
  }
  effect.print();
  std::printf("\nMonotone (loop-aware never loses a proof): %s\n", monotone ? "yes" : "NO");
  std::printf("Strict site+cycle decrease on every improved kernel (%u): %s\n", improved_kernels,
              strict_ok ? "yes" : "NO (regression!)");

  std::ofstream json(json_path);
  json << "{\"benchmark\":\"static_analysis\"," << bench::host_concurrency_json()
       << ",\"improved_kernels\":" << improved_kernels
       << ",\"monotone\":" << (monotone ? "true" : "false")
       << ",\"strict_decrease\":" << (strict_ok ? "true" : "false") << ",\"kernels\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    const StaticPoint& pt = points[i];
    if (i) json << ",";
    json << "{\"name\":\"" << pt.name << "\",\"accesses\":" << pt.accesses
         << ",\"safe_pr1\":" << pt.safe_old << ",\"safe_loop_aware\":" << pt.safe_new
         << ",\"witnesses\":" << pt.witnesses;
    if (pt.measured) {
      json << ",\"sw_sites_pr1\":" << pt.sites_old << ",\"sw_sites_loop_aware\":" << pt.sites_new
           << ",\"sw_cycles_pr1\":" << pt.cycles_old
           << ",\"sw_cycles_loop_aware\":" << pt.cycles_new;
    }
    json << "}";
  }
  json << "]}\n";
  std::printf("wrote %s\n", json_path.c_str());

  return (monotone && strict_ok) ? 0 : 1;
}
