// Ablations of the HAccRG design choices DESIGN.md calls out:
//
//  A. Fence gating (Section III-C): without it, every cross-thread
//     read-after-write between barriers is flagged — the legitimate
//     threadfence pattern in REDUCE/PSUM/KMEANS would drown in reports.
//     (We ablate by running with the fence IDs frozen, which makes the
//     gate always report.)
//  B. Warp-awareness (Section III-A): with the intra-warp filter off
//     (the warp_regrouping setting), SIMD-synchronized accesses are
//     reported as races — quantifying how much noise the filter removes.
//  C. Sync-ID increment suppression (Section IV-B): the fraction of
//     barrier events that actually advance a sync ID, i.e. how much the
//     "only if the block touched global memory" optimization saves the
//     8-bit counters.
//  D. Static RDU filter: the compile-time race analysis classifies each
//     memory pc; accesses proved safe at the detector's granularity skip
//     their shadow check entirely. Reported races must be identical —
//     the filter only removes provably-redundant check work.
#include <set>
#include <utility>

#include "bench/harness.hpp"
#include "isa/builder.hpp"

namespace {

/// A warp-synchronous reduction: the last five tree steps run without
/// barriers, relying on SIMD lockstep (a classic pre-Volta idiom). Safe
/// under normal execution; racy if warps are re-grouped.
haccrg::sim::SimResult run_warp_synchronous(bool regrouping) {
  using namespace haccrg;
  rd::HaccrgConfig det = bench::detection_word();
  det.warp_regrouping = regrouping;
  arch::GpuConfig cfg = bench::experiment_gpu();
  sim::Gpu gpu(cfg, det);
  const u32 block = 64;
  const Addr out = gpu.allocator().alloc(4, "out");

  isa::KernelBuilder kb("warpsync_reduce");
  isa::Reg tid = kb.special(isa::SpecialReg::kTid);
  isa::Reg pout = kb.param(0);
  isa::Reg saddr = kb.reg();
  kb.mul(saddr, tid, 4u);
  kb.st_shared(saddr, tid);
  kb.barrier();
  // One barriered step 64 -> 32, then warp-synchronous steps 32 -> 1.
  isa::Pred low = kb.pred();
  kb.setp(low, isa::CmpOp::kLtU, tid, 32u);
  kb.if_(low, [&] {
    isa::Reg mine = kb.reg();
    isa::Reg theirs = kb.reg();
    kb.ld_shared(mine, saddr);
    kb.ld_shared(theirs, saddr, 32 * 4);
    kb.add(mine, mine, isa::Operand(theirs));
    kb.st_shared(saddr, mine);
  });
  kb.barrier();
  for (u32 stride = 16; stride > 0; stride /= 2) {
    isa::Pred active = kb.pred();
    kb.setp(active, isa::CmpOp::kLtU, tid, stride);
    kb.if_(active, [&] {
      isa::Reg mine = kb.reg();
      isa::Reg theirs = kb.reg();
      kb.ld_shared(mine, saddr);
      kb.ld_shared(theirs, saddr, stride * 4);
      kb.add(mine, mine, isa::Operand(theirs));
      kb.st_shared(saddr, mine);
    });
    // No barrier: all active lanes are in warp 0.
  }
  isa::Pred is0 = kb.pred();
  kb.setp(is0, isa::CmpOp::kEq, tid, 0u);
  kb.if_(is0, [&] {
    isa::Reg sum = kb.reg();
    isa::Reg zero = kb.imm(0);
    kb.ld_shared(sum, zero);
    kb.st_global(pout, sum);
  });
  isa::Program prog = kb.build();

  sim::LaunchConfig launch;
  launch.program = &prog;
  launch.grid_dim = 1;
  launch.block_dim = block;
  launch.shared_mem_bytes = block * 4;
  launch.params = {out};
  return gpu.launch(launch);
}

}  // namespace

int main() {
  using namespace haccrg;
  bench::print_header("Design ablations", "Sections III-A, III-C, IV-B design choices");

  // --- B: warp filter --------------------------------------------------------
  std::printf("Warp-awareness ablation on a warp-synchronous reduction (the last five\n"
              "tree steps run barrier-free inside one warp — safe under SIMD lockstep):\n");
  {
    sim::SimResult on = run_warp_synchronous(false);
    sim::SimResult off = run_warp_synchronous(true);
    TablePrinter warp_table({"Config", "Shared races"});
    warp_table.add_row({"warp filter on (normal)", std::to_string(on.races.total())});
    warp_table.add_row({"warp filter off (re-grouping)", std::to_string(off.races.total())});
    warp_table.print();
  }
  std::printf("With re-grouping the lockstep guarantee is gone, so HAccRG must (and\n"
              "does) report the warp-synchronous accesses (Section III-A).\n\n");

  // --- A: fence gate ------------------------------------------------------------
  std::printf("Fence-gate ablation on the threadfence-pattern benchmarks:\n");
  TablePrinter fence_table({"Benchmark", "Races (gate on)", "Races (gate off)"});
  for (const char* name : {"REDUCE", "PSUM", "KMEANS"}) {
    rd::HaccrgConfig gate_on = bench::detection_word();
    rd::HaccrgConfig gate_off = gate_on;
    gate_off.disable_fence_gate = true;
    const u64 races_on = bench::run_benchmark(name, gate_on).races
                             .count(rd::RaceMechanism::kFence);
    const u64 races_off = bench::run_benchmark(name, gate_off).races
                              .count(rd::RaceMechanism::kFence);
    fence_table.add_row({name, std::to_string(races_on), std::to_string(races_off)});
  }
  fence_table.print();
  std::printf("Without consulting the writer's fence epoch, the legitimate fenced\n"
              "producer/consumer pattern is misreported (Section III-C).\n\n");

  // --- C: sync-ID increments ---------------------------------------------------
  std::printf("Sync-ID increment suppression (barrier events vs increments performed):\n");
  TablePrinter sync_table({"Benchmark", "Barrier events", "Sync increments", "Suppressed"});
  for (const auto& info : kernels::all_benchmarks()) {
    sim::SimResult r = bench::run_benchmark(info.name, bench::detection_combined());
    const u64 events = r.stats.get("ids.barrier_events");
    const u64 incs = r.stats.get("ids.sync_increments");
    sync_table.add_row({info.name, std::to_string(events), std::to_string(incs),
                        events == 0 ? "-" : TablePrinter::pct(1.0 - static_cast<f64>(incs) /
                                                                        static_cast<f64>(events))});
  }
  sync_table.print();
  std::printf("Barriers guarding only shared memory never advance the 8-bit counters,\n"
              "which is how the paper keeps overflow 'very rare' (Section VI-A2).\n\n");

  // --- D: static RDU filter ----------------------------------------------------
  std::printf("Static filter ablation (compile-time pruning of RDU shadow checks):\n");
  TablePrinter static_table({"Benchmark", "Checked accesses", "Filtered", "Racy granules (off)",
                             "Racy granules (filter)", "Match"});
  bool all_match = true;
  for (const auto& info : kernels::all_benchmarks()) {
    const rd::HaccrgConfig det = bench::detection_combined();
    sim::SimResult base = bench::run_benchmark(info.name, det);
    sim::SimResult filt = bench::run_benchmark_static_filtered(info.name, det);
    const u64 checked = filt.stats.get("shared_rdu.checks") + filt.stats.get("global_rdu.checks");
    const u64 filtered = filt.stats.get("rd.static_filtered");
    // Soundness criterion: the set of (space, granule) race locations must
    // be identical. Raw record counts are timing-sensitive (filtering
    // changes shadow traffic, which shifts warp interleaving and thus
    // which pc gets blamed for a granule), so they are not compared.
    auto locations = [](const sim::SimResult& r) {
      std::set<std::pair<u8, Addr>> out;
      for (const auto& race : r.races.races())
        out.insert({static_cast<u8>(race.space), race.granule_addr});
      return out;
    };
    const auto base_locs = locations(base);
    const auto filt_locs = locations(filt);
    const bool match = base_locs == filt_locs;
    all_match = all_match && match;
    static_table.add_row({info.name, std::to_string(checked), std::to_string(filtered),
                          std::to_string(base_locs.size()), std::to_string(filt_locs.size()),
                          match ? "yes" : "NO"});
  }
  static_table.print();
  std::printf("The filter removes shadow lookups for accesses the static pass proved\n"
              "race-free at the detector's granularity; every racy location is still\n"
              "detected: %s.\n",
              all_match ? "yes" : "NO (soundness bug!)");
  return all_match ? 0 : 1;
}
