// Resilience campaign: how HAccRG's detection coverage degrades when its
// own hardware is damaged. Sweeps fault site x fault rate over a sample
// of the Section VI-A injected-race campaign and reports, per point,
// how many injected races are still caught, how many detection
// opportunities were lost, and the timing overhead of the interconnect
// retry machinery. Two invariants are asserted, not just reported:
//
//   1. Zero-fault identity: a FaultPlan with every rate at zero (seed
//      set) produces byte-identical stats/cycles/races to no plan at
//      all — arming the framework costs nothing until a site fires.
//   2. Accounted degradation: any campaign point that misses a race the
//      zero-fault baseline catches must carry a non-zero
//      rd.coverage_lost — coverage is never lost silently.
//
//   bench_resilience [--smoke] [--seed N] [--min-coverage F]
//                    [--json BENCH_resilience.json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "fault/fault.hpp"
#include "kernels/injection.hpp"

namespace {

using namespace haccrg;
using fault::FaultPlan;
using fault::FaultSite;

/// One injection-case execution, with the degradation accounting the
/// plain kernels::run_injection_case does not expose.
struct CaseRun {
  bool completed = false;
  bool detected = false;
  u64 races_in_space = 0;
  u64 races_total = 0;
  Cycle cycles = 0;
  u64 coverage_lost = 0;
  std::string stats;  ///< StatSet::serialize(), for the identity check
};

/// Mirror of kernels::run_injection_case (same detector config, same
/// single-block policy) plus a FaultPlan and full stats capture.
CaseRun run_case(const kernels::InjectionCase& test, const FaultPlan& plan) {
  const kernels::BenchmarkInfo* info = kernels::find_benchmark(test.benchmark);
  CaseRun out;
  if (info == nullptr) return out;

  rd::HaccrgConfig det;
  det.enable_shared = true;
  det.enable_global = true;
  det.shared_granularity = 4;
  det.global_granularity = 4;

  kernels::BenchOptions opts;
  opts.injection = test.injection;
  if (info->real_race_multiblock &&
      test.injection.kind == kernels::InjectionKind::kRemoveBarrier)
    opts.single_block = true;

  sim::SimConfig sim_cfg = sim::SimConfig::from_env();
  sim_cfg.faults = plan;
  sim::Gpu gpu(bench::experiment_gpu(), det, sim_cfg);
  kernels::PreparedKernel prep = info->prepare(gpu, opts);
  sim::SimResult run = gpu.launch(prep.launch());
  if (!run.completed) {
    std::fprintf(stderr, "%s failed: %s\n", test.label().c_str(), run.error.c_str());
    return out;
  }
  out.completed = true;
  out.cycles = run.cycles;
  out.races_total = run.races.unique();
  out.races_in_space = run.races.count(test.expected_space);
  out.coverage_lost = run.stats.get("rd.coverage_lost");
  out.stats = run.stats.serialize();
  if (test.injection.kind == kernels::InjectionKind::kRogueCritical)
    out.detected = run.races.count(rd::RaceMechanism::kLockset) > 0;
  else if (test.injection.kind == kernels::InjectionKind::kRemoveFence)
    out.detected = run.races.count(rd::RaceMechanism::kFence) +
                       run.races.count(rd::RaceMechanism::kL1Stale) >
                   0;
  else
    out.detected = out.races_in_space > 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  u64 seed = 7;
  f64 min_coverage = 0.0;
  std::string json_path = "BENCH_resilience.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-coverage") == 0 && i + 1 < argc) {
      min_coverage = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_resilience [--smoke] [--seed N] "
                   "[--min-coverage F] [--json FILE]\n");
      return 2;
    }
  }

  bench::print_header("Detector resilience under injected hardware faults",
                      "the robustness study (not in the paper)");

  // Sample of the 41-case campaign: every injection kind is represented.
  const auto all_cases = kernels::all_injection_cases();
  std::vector<kernels::InjectionCase> cases;
  for (size_t i = 0; i < all_cases.size(); i += smoke ? 18 : 9)
    cases.push_back(all_cases[i]);

  // The swept sites; the three interconnect sites perturb timing only,
  // so their rows double as a retry-overhead measurement.
  const FaultSite sites[] = {
      FaultSite::kSharedShadowFlip, FaultSite::kGlobalShadowFlip,
      FaultSite::kBloomFlip,        FaultSite::kRaceRegDrop,
      FaultSite::kDramShadowFlip,   FaultSite::kIcntDrop,
      FaultSite::kIcntDelay,
  };
  std::vector<u32> rates = smoke ? std::vector<u32>{20'000}
                                 : std::vector<u32>{1'000, 10'000, 100'000};

  // --- Zero-fault baseline (and the arming-is-free identity check) ----------
  std::vector<CaseRun> baseline;
  u32 baseline_detected = 0;
  bool identity_ok = true;
  for (const auto& test : cases) {
    CaseRun base = run_case(test, FaultPlan{});
    if (!base.completed) return 1;
    if (base.detected) ++baseline_detected;

    FaultPlan armed_zero;
    armed_zero.seed = seed;  // nonzero seed, every rate zero
    const CaseRun zero = run_case(test, armed_zero);
    if (!zero.completed || zero.cycles != base.cycles || zero.stats != base.stats ||
        zero.races_total != base.races_total) {
      std::fprintf(stderr, "FAIL: zero-rate FaultPlan perturbed %s\n", test.label().c_str());
      identity_ok = false;
    }
    baseline.push_back(std::move(base));
  }
  std::printf("baseline: %u / %zu sampled injected races detected, zero-fault identity %s\n\n",
              baseline_detected, cases.size(), identity_ok ? "holds" : "VIOLATED");

  // --- The sweep -------------------------------------------------------------
  struct Point {
    std::string site;
    u32 rate_ppm = 0;
    u32 detected = 0;
    u64 races_caught = 0;
    u64 coverage_lost = 0;
    u64 missed_unexplained = 0;
    f64 mean_overhead = 0.0;  ///< cycles vs the zero-fault run, geomean
  };
  std::vector<Point> points;
  bool accounting_ok = true;

  TablePrinter table({"Site", "RatePPM", "Detected", "CoverageLost", "Unexplained", "Overhead"});
  for (const FaultSite site : sites) {
    for (const u32 rate : rates) {
      Point pt;
      pt.site = std::string(fault::fault_site_key(site));
      pt.rate_ppm = rate;
      std::vector<f64> overheads;
      for (size_t i = 0; i < cases.size(); ++i) {
        FaultPlan plan;
        plan.seed = seed ^ (static_cast<u64>(site) << 32) ^ rate;
        plan.set_rate(site, rate);
        const CaseRun run = run_case(cases[i], plan);
        if (!run.completed) return 1;
        if (run.detected) ++pt.detected;
        pt.races_caught += run.races_in_space;
        pt.coverage_lost += run.coverage_lost;
        overheads.push_back(baseline[i].cycles > 0
                                ? static_cast<f64>(run.cycles) /
                                      static_cast<f64>(baseline[i].cycles)
                                : 1.0);
        // The accounting invariant: a race the baseline catches may only
        // go missing if the run also reports lost coverage.
        if (baseline[i].detected && !run.detected && run.coverage_lost == 0) {
          ++pt.missed_unexplained;
          accounting_ok = false;
          std::fprintf(stderr, "FAIL: %s at %s=%u missed silently (coverage_lost=0)\n",
                       cases[i].label().c_str(), pt.site.c_str(), rate);
        }
      }
      pt.mean_overhead = geomean(overheads);
      table.add_row({pt.site, std::to_string(pt.rate_ppm),
                     std::to_string(pt.detected) + "/" + std::to_string(baseline_detected),
                     std::to_string(pt.coverage_lost), std::to_string(pt.missed_unexplained),
                     TablePrinter::fmt(pt.mean_overhead, 3) + "x"});
      points.push_back(std::move(pt));
    }
  }
  table.print();

  // --- Coverage floor (CI smoke uses this) -----------------------------------
  f64 worst_coverage = 1.0;
  for (const Point& pt : points) {
    if (baseline_detected == 0) break;
    const f64 cov = static_cast<f64>(pt.detected) / baseline_detected;
    if (cov < worst_coverage) worst_coverage = cov;
  }
  std::printf("\nworst-point coverage: %.2f (floor %.2f)\n", worst_coverage, min_coverage);

  // --- JSON ------------------------------------------------------------------
  std::ofstream json(json_path, std::ios::trunc);
  if (json.good()) {
    json << "{\n  \"bench\": \"resilience\",\n  " << bench::host_concurrency_json()
         << ",\n  \"seed\": " << seed
         << ",\n  \"smoke\": " << (smoke ? "true" : "false")
         << ",\n  \"cases\": " << cases.size()
         << ",\n  \"baseline_detected\": " << baseline_detected
         << ",\n  \"zero_fault_identical\": " << (identity_ok ? "true" : "false")
         << ",\n  \"worst_coverage\": " << worst_coverage << ",\n  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const Point& pt = points[i];
      json << "    {\"site\": \"" << pt.site << "\", \"rate_ppm\": " << pt.rate_ppm
           << ", \"detected\": " << pt.detected << ", \"races_caught\": " << pt.races_caught
           << ", \"coverage_lost\": " << pt.coverage_lost
           << ", \"missed_unexplained\": " << pt.missed_unexplained
           << ", \"mean_overhead\": " << pt.mean_overhead << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!identity_ok) {
    std::printf("FAIL: zero-fault runs are not byte-identical to the unarmed baseline\n");
    return 1;
  }
  if (!accounting_ok) {
    std::printf("FAIL: some campaign point lost coverage silently\n");
    return 1;
  }
  if (worst_coverage < min_coverage) {
    std::printf("FAIL: coverage %.2f below the --min-coverage floor %.2f\n", worst_coverage,
                min_coverage);
    return 1;
  }
  std::printf("degradation fully accounted: every missed race carries coverage_lost > 0\n");
  return 0;
}
