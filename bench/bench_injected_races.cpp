// Section VI-A injected races: 23 removed barriers + 13 rogue cross-block
// accesses + 3 removed fences + 2 critical-section rogues = 41 cases,
// all of which the paper reports HAccRG detects.
#include "bench/harness.hpp"
#include "kernels/injection.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Injected data races (Section VI-A)", "Section VI-A, injected races");

  TablePrinter table({"Case", "ExpectedSpace", "Detected", "RacesInSpace", "TotalRaces"});
  u32 detected = 0;
  const auto cases = kernels::all_injection_cases();
  for (const auto& test : cases) {
    const auto result = kernels::run_injection_case(test, bench::experiment_gpu());
    if (result.detected) ++detected;
    table.add_row({test.label(),
                   test.expected_space == rd::MemSpace::kShared ? "shared" : "global",
                   result.detected ? "yes" : "NO", std::to_string(result.races_in_space),
                   std::to_string(result.races_total)});
  }
  table.print();
  std::printf("\nDetected %u / %zu injected races (paper: 41/41)\n", detected, cases.size());
  return detected == cases.size() ? 0 : 1;
}
