// google-benchmark micro suite for HAccRG's building blocks: the Fig.-3
// shadow state machine, Bloom signatures, the set-associative cache tag
// model, the coalescer, and the banked shared-memory conflict calculator.
// These quantify the per-check cost a hardware RDU would pipeline.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "haccrg/bloom.hpp"
#include "haccrg/race.hpp"
#include "haccrg/shadow.hpp"
#include "haccrg/shared_rdu.hpp"
#include "mem/cache.hpp"
#include "mem/coalescer.hpp"
#include "mem/shared_memory.hpp"

namespace haccrg {
namespace {

void BM_SharedStateMachine(benchmark::State& state) {
  rd::DetectPolicy policy;
  rd::SharedShadowEntry entry;
  rd::AccessInfo access;
  access.size = 4;
  SplitMix64 rng(1);
  for (auto _ : state) {
    access.addr = static_cast<u32>(rng.next() & 0xfff) * 4;
    access.thread_slot = static_cast<u16>(rng.next() & 0x3ff);
    access.warp_in_sm = access.thread_slot / 32;
    access.is_write = (rng.next() & 1) != 0;
    auto out = rd::check_shared_access(entry, access, policy);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SharedStateMachine);

void BM_GlobalStateMachine(benchmark::State& state) {
  rd::DetectPolicy policy;
  rd::GlobalShadowEntry entry;
  rd::AccessInfo access;
  access.size = 4;
  SplitMix64 rng(2);
  auto fences = [](u32, u32) -> u8 { return 0; };
  for (auto _ : state) {
    access.addr = static_cast<u32>(rng.next() & 0xfff) * 4;
    access.thread_slot = static_cast<u16>(rng.next() & 0x3ff);
    access.warp_in_sm = access.thread_slot / 32;
    access.sm_id = static_cast<u32>(rng.next() & 0x1f);
    access.is_write = (rng.next() & 1) != 0;
    auto out = rd::check_global_access(entry, access, policy, fences);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GlobalStateMachine);

void BM_ShadowPackUnpack(benchmark::State& state) {
  rd::GlobalShadowEntry entry;
  entry.m = true;
  entry.tid = 513;
  entry.sync_id = 7;
  entry.sig = 0xbeef;
  for (auto _ : state) {
    const u64 raw = entry.pack();
    auto round = rd::GlobalShadowEntry::unpack(raw);
    benchmark::DoNotOptimize(round);
  }
}
BENCHMARK(BM_ShadowPackUnpack);

void BM_BloomInsertIntersect(benchmark::State& state) {
  const rd::BloomGeometry geom{static_cast<u32>(state.range(0)), 2};
  SplitMix64 rng(3);
  for (auto _ : state) {
    rd::BloomSignature a, b;
    a.insert(static_cast<Addr>(rng.next()), geom);
    b.insert(static_cast<Addr>(rng.next()), geom);
    bool null = rd::BloomSignature::intersection_null(a, b, geom);
    benchmark::DoNotOptimize(null);
  }
}
BENCHMARK(BM_BloomInsertIntersect)->Arg(8)->Arg(16)->Arg(32);

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache("bm", 48 * 1024, 6, 128, mem::WritePolicy::kWriteThroughNoAllocate);
  SplitMix64 rng(4);
  for (auto _ : state) {
    auto r = cache.access(static_cast<Addr>(rng.next() & 0xfffff), false);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CacheAccess);

void BM_Coalescer(benchmark::State& state) {
  std::vector<mem::LaneAccess> accesses;
  for (u32 lane = 0; lane < 32; ++lane) {
    accesses.push_back({lane, lane * 4 * static_cast<u32>(state.range(0)), 4});
  }
  for (auto _ : state) {
    auto segments = mem::coalesce(accesses, 128);
    benchmark::DoNotOptimize(segments);
  }
}
BENCHMARK(BM_Coalescer)->Arg(1)->Arg(4)->Arg(32);

void BM_BankConflicts(benchmark::State& state) {
  mem::SharedMemory smem(16 * 1024, 16);
  std::vector<u32> addrs;
  for (u32 lane = 0; lane < 32; ++lane) addrs.push_back(lane * 4 * state.range(0));
  for (auto _ : state) {
    u32 cycles = smem.conflict_cycles(addrs);
    benchmark::DoNotOptimize(cycles);
  }
}
BENCHMARK(BM_BankConflicts)->Arg(1)->Arg(2)->Arg(16);

// Insert throughput of the race log's flat dedup table. Arg(0) is the
// number of distinct (granule, pc) keys cycled through — small = mostly
// duplicate hits, large = mostly fresh inserts with growth amortized in.
void BM_RaceLogRecord(benchmark::State& state) {
  const u32 distinct = static_cast<u32>(state.range(0));
  rd::RaceLog log;
  rd::RaceRecord race;
  race.space = rd::MemSpace::kGlobal;
  race.type = rd::RaceType::kRaw;
  SplitMix64 rng(5);
  for (auto _ : state) {
    const u64 r = rng.next();
    race.granule_addr = static_cast<Addr>(r % distinct) * 4;
    race.pc = static_cast<u32>((r >> 32) & 0xf);
    bool fresh = log.record(race);
    benchmark::DoNotOptimize(fresh);
  }
}
BENCHMARK(BM_RaceLogRecord)->Arg(16)->Arg(1024)->Arg(65536);

// Full SharedRdu::check per-warp cost: 32 lanes hammering one block's
// scratchpad region. Arg(0)=0 measures the word-level fast path (every
// lane re-reads its own granule); Arg(0)=1 forces the slow unpack/pack
// path (alternating writer threads per granule).
void BM_SharedRduCheck(benchmark::State& state) {
  const bool contended = state.range(0) != 0;
  rd::HaccrgConfig config;
  rd::DetectPolicy policy;
  rd::RaceStaging staging;
  rd::SharedRdu rdu(0, 16 * 1024, config, policy, staging);
  rd::AccessInfo access;
  access.size = 4;
  u64 iter = 0;
  for (auto _ : state) {
    ++iter;
    for (u32 lane = 0; lane < 32; ++lane) {
      access.addr = lane * 64;
      access.thread_slot = contended ? static_cast<u16>((iter + lane) & 0x3ff)
                                     : static_cast<u16>(lane);
      access.warp_in_sm = access.thread_slot / policy.warp_size;
      access.is_write = contended;
      rdu.check(access);
    }
    benchmark::DoNotOptimize(rdu.checks());
  }
  benchmark::DoNotOptimize(staging);
}
BENCHMARK(BM_SharedRduCheck)->Arg(0)->Arg(1);

}  // namespace
}  // namespace haccrg

BENCHMARK_MAIN();
