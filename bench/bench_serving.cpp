// Serving throughput: what the sharded trace-replay service buys over
// running live simulations. Per registry kernel this measures
//
//   1. the live combined-detection simulation (the number every client
//      would otherwise pay),
//   2. a cold served job — fresh server, empty caches, full decode +
//      sharded replay through haccrg_serve, and
//   3. the aggregate steady state — many jobs over the same trace
//      through one server, where the decode cache, the pre-warmed
//      replay arenas and the report memo all earn their keep,
//
// and reports detection throughput (simulated kilocycles served per
// host second, KIPS) for each, plus the speedup over live. The
// aggregate number leans on memoization by design — a detection
// service answering repeated queries over recorded traces is the
// deployment model — so the memo hit rate is reported next to it
// rather than hidden. The cold column is the honest no-cache floor.
//
// A separate saturation phase drives a bounded queue past its capacity
// with replay (not memo) jobs: >= 1000 jobs queued at once, overflow
// rejected with kUnavailable, then a full drain with every accepted
// job accounted for.
//
//   bench_serving [--smoke] [--workers N] [--job-workers N]
//                 [--jobs N] [--json BENCH_serving.json]
//
// Exits 1 when served results diverge from the live race sets, when a
// drained job is lost, or (full mode) when the aggregate geomean
// speedup falls below 100x or saturation never reaches 1000 queued.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "serve/server.hpp"
#include "trace/index.hpp"
#include "trace/replay.hpp"

namespace {

using namespace haccrg;

std::vector<u8> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string s = buf.str();
  return std::vector<u8>(s.begin(), s.end());
}

/// Minimal scan for `"key": <number>` in JSON written by this repo.
f64 json_number(const std::string& text, const std::string& key, size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle, from);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

/// The LAST "unique_races" in a report is the totals section's.
i64 report_unique_races(const std::string& report) {
  size_t at = report.rfind("\"unique_races\":");
  if (at == std::string::npos) return -1;
  return static_cast<i64>(json_number(report, "unique_races", at));
}

f64 ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<f64, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct KernelPoint {
  std::string name;
  u64 cycles = 0;
  u64 races = 0;
  u64 trace_bytes = 0;
  f64 live_kips = 0.0;
  f64 cold_kips = 0.0;
  f64 aggregate_kips = 0.0;
  f64 cold_speedup = 0.0;
  f64 aggregate_speedup = 0.0;
  f64 memo_hit_rate = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace haccrg;

  bool smoke = false;
  u32 server_workers = 2;  ///< worker threads draining the queue
  u32 job_workers = 1;     ///< replay shards per job (1 = serial replay)
  u32 jobs_per_kernel = 32;
  bool jobs_explicit = false;
  std::string json_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 1) server_workers = static_cast<u32>(v);
    } else if (std::strcmp(argv[i], "--job-workers") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 1) job_workers = static_cast<u32>(v);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 1) {
        jobs_per_kernel = static_cast<u32>(v);
        jobs_explicit = true;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serving [--smoke] [--workers N] [--job-workers N] "
                   "[--jobs N] [--json FILE]\n");
      return 2;
    }
  }
  if (smoke && !jobs_explicit) jobs_per_kernel = 8;

  bench::print_header("Sharded replay serving throughput",
                      "the detection pipeline, served instead of simulated");

  // --- Corpus: live run + recorded v2 trace per kernel ----------------------
  struct TraceImage {
    std::string name;
    std::vector<u8> bytes;
  };
  std::vector<KernelPoint> points;
  std::vector<TraceImage> corpus;
  u32 kernel_count = 0;
  for (const auto& info : kernels::all_benchmarks()) {
    if (smoke && kernel_count == 3) break;
    ++kernel_count;

    KernelPoint pt;
    pt.name = info.name;
    const bench::TimedRun live = bench::run_benchmark_timed(info.name, bench::detection_combined());
    pt.cycles = live.result.cycles;
    pt.races = live.result.races.unique();
    pt.live_kips = live.kilocycles_per_sec;

    const std::string trace_path = std::string("bench_serving_") + info.name + ".trc";
    sim::SimConfig rec_cfg = sim::SimConfig::from_env();
    rec_cfg.trace_path = trace_path;
    rec_cfg.trace_index = true;  // v2: the server replays slices via the index
    const bench::TimedRun recorded =
        bench::run_benchmark_timed(info.name, bench::detection_combined(), {}, rec_cfg);
    if (recorded.result.cycles != live.result.cycles) {
      std::fprintf(stderr, "%s: tracing changed the simulation\n", info.name.c_str());
      return 1;
    }
    TraceImage img;
    img.name = info.name;
    img.bytes = read_bytes(trace_path);
    std::remove(trace_path.c_str());
    if (img.bytes.empty()) {
      std::fprintf(stderr, "%s: recorded trace is empty\n", info.name.c_str());
      return 1;
    }
    pt.trace_bytes = img.bytes.size();
    corpus.push_back(std::move(img));
    points.push_back(std::move(pt));
  }

  // --- Cold + aggregate served throughput per kernel ------------------------
  for (size_t k = 0; k < points.size(); ++k) {
    KernelPoint& pt = points[k];
    serve::ServerConfig cfg;
    cfg.workers = server_workers;
    cfg.max_queue = jobs_per_kernel + 8;
    serve::Server server(cfg);

    // Cold: empty decode cache, empty memo, cold arenas.
    const auto t_cold = std::chrono::steady_clock::now();
    u64 first_id = 0;
    Status st = server.submit(corpus[k].bytes, job_workers, /*kernel=*/-1, first_id);
    std::string report;
    if (st.ok()) st = server.result(first_id, /*wait=*/true, report);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: cold served job failed: %s\n", pt.name.c_str(),
                   st.message().c_str());
      return 1;
    }
    const f64 cold_ms = ms_since(t_cold);

    const i64 served_races = report_unique_races(report);
    if (served_races != static_cast<i64>(pt.races)) {
      std::fprintf(stderr, "%s: served report has %lld unique races, live run had %llu\n",
                   pt.name.c_str(), static_cast<long long>(served_races),
                   static_cast<unsigned long long>(pt.races));
      return 1;
    }

    // Aggregate: the same trace resubmitted jobs_per_kernel times. After
    // the first decode+replay the service answers from the memo; that IS
    // the serving steady state, and the hit rate below says so.
    const auto t_agg = std::chrono::steady_clock::now();
    std::vector<u64> ids;
    for (u32 j = 0; j < jobs_per_kernel; ++j) {
      u64 id = 0;
      st = server.submit(corpus[k].bytes, job_workers, -1, id);
      if (!st.ok()) {
        std::fprintf(stderr, "%s: aggregate submit %u failed: %s\n", pt.name.c_str(), j,
                     st.message().c_str());
        return 1;
      }
      ids.push_back(id);
    }
    for (const u64 id : ids) {
      std::string r;
      st = server.result(id, true, r);
      if (!st.ok() || r != report) {
        std::fprintf(stderr, "%s: aggregate job %llu diverged from the cold report\n",
                     pt.name.c_str(), static_cast<unsigned long long>(id));
        return 1;
      }
    }
    const f64 agg_ms = ms_since(t_agg);

    const std::string stats = server.stats_json();
    const f64 memo_hits = json_number(stats, "memo_hits");
    pt.memo_hit_rate =
        jobs_per_kernel > 0 ? (memo_hits < 0.0 ? 0.0 : memo_hits) / jobs_per_kernel : 0.0;
    pt.cold_kips = cold_ms > 0.0 ? static_cast<f64>(pt.cycles) / cold_ms : 0.0;
    pt.aggregate_kips =
        agg_ms > 0.0 ? static_cast<f64>(pt.cycles) * jobs_per_kernel / agg_ms : 0.0;
    pt.cold_speedup = pt.live_kips > 0.0 ? pt.cold_kips / pt.live_kips : 0.0;
    pt.aggregate_speedup = pt.live_kips > 0.0 ? pt.aggregate_kips / pt.live_kips : 0.0;
    server.shutdown();
  }

  TablePrinter table({"Benchmark", "TraceKB", "LiveKIPS", "ColdKIPS", "AggKIPS", "Cold x",
                      "Agg x", "MemoHit"});
  std::vector<f64> cold_speedups, agg_speedups;
  for (const KernelPoint& pt : points) {
    table.add_row({pt.name, std::to_string(pt.trace_bytes / 1024),
                   TablePrinter::fmt(pt.live_kips, 0), TablePrinter::fmt(pt.cold_kips, 0),
                   TablePrinter::fmt(pt.aggregate_kips, 0),
                   TablePrinter::fmt(pt.cold_speedup, 1),
                   TablePrinter::fmt(pt.aggregate_speedup, 1),
                   TablePrinter::fmt(pt.memo_hit_rate, 2)});
    cold_speedups.push_back(pt.cold_speedup);
    agg_speedups.push_back(pt.aggregate_speedup);
  }
  const f64 cold_geo = geomean(cold_speedups);
  const f64 agg_geo = geomean(agg_speedups);
  table.add_row({"GEOMEAN", "-", "-", "-", "-", TablePrinter::fmt(cold_geo, 1),
                 TablePrinter::fmt(agg_geo, 1), "-"});
  table.print();
  std::printf("\naggregate geomean speedup: %.1fx (target >= 100x), cold floor %.1fx\n",
              agg_geo, cold_geo);

  // --- Saturation: a bounded queue past capacity, then a full drain ---------
  // Replay jobs (memo off) against a small scale-1 trace so the queue
  // genuinely backs up: submission is a memcpy, draining is real work.
  const u32 sat_capacity = smoke ? 48 : 1100;
  const u32 sat_submissions = smoke ? 80 : 1300;
  const std::string sat_path = "bench_serving_saturation.trc";
  {
    sim::SimConfig cfg = sim::SimConfig::from_env();
    cfg.trace_path = sat_path;
    cfg.trace_index = true;
    sim::Gpu gpu(bench::experiment_gpu(), bench::detection_combined(), cfg);
    kernels::PreparedKernel prep = kernels::find_benchmark("REDUCE")->prepare(gpu, {});
    const sim::SimResult r = gpu.launch(prep.launch());
    if (!r.completed) {
      std::fprintf(stderr, "saturation trace recording failed: %s\n", r.error.c_str());
      return 1;
    }
  }
  std::vector<u8> sat_trace = read_bytes(sat_path);
  std::remove(sat_path.c_str());

  u64 accepted = 0, rejected = 0, lost = 0;
  f64 peak_queue = 0.0, drain_ms = 0.0, drain_jobs_per_sec = 0.0;
  {
    serve::ServerConfig cfg;
    cfg.workers = server_workers;
    cfg.max_queue = sat_capacity;
    cfg.memoize = false;  // every accepted job replays; nothing is absorbed
    serve::Server server(cfg);
    std::vector<u64> ids;
    const auto t0 = std::chrono::steady_clock::now();
    for (u32 j = 0; j < sat_submissions; ++j) {
      u64 id = 0;
      const Status st = server.submit(sat_trace, 1, -1, id);
      if (st.ok()) {
        ids.push_back(id);
        ++accepted;
      } else if (st.code() == StatusCode::kUnavailable) {
        ++rejected;
      } else {
        std::fprintf(stderr, "saturation submit failed oddly: %s\n", st.message().c_str());
        return 1;
      }
      if ((j + 1) % 64 == 0 || j + 1 == sat_submissions) {
        const f64 depth = json_number(server.stats_json(), "queue_depth");
        if (depth > peak_queue) peak_queue = depth;
      }
    }
    server.shutdown();  // drain: every accepted job still completes
    drain_ms = ms_since(t0);
    for (const u64 id : ids) {
      std::string r;
      if (!server.result(id, false, r).ok()) ++lost;
    }
    drain_jobs_per_sec = drain_ms > 0.0 ? accepted * 1000.0 / drain_ms : 0.0;
  }
  std::printf("saturation: %llu accepted, %llu rejected (kUnavailable), peak queue %.0f, "
              "drained in %.0f ms (%.0f jobs/s), %llu lost\n",
              static_cast<unsigned long long>(accepted),
              static_cast<unsigned long long>(rejected), peak_queue, drain_ms,
              drain_jobs_per_sec, static_cast<unsigned long long>(lost));
  if (lost > 0) {
    std::fprintf(stderr, "FAIL: %llu accepted jobs have no result after the drain\n",
                 static_cast<unsigned long long>(lost));
    return 1;
  }

  // --- JSON ------------------------------------------------------------------
  std::ofstream json(json_path, std::ios::trunc);
  if (json.good()) {
    json << "{\n  \"bench\": \"serving\",\n  "
         << bench::host_concurrency_json(server_workers * job_workers)
         << ",\n  \"smoke\": " << (smoke ? "true" : "false")
         << ",\n  \"server_workers\": " << server_workers
         << ",\n  \"job_workers\": " << job_workers
         << ",\n  \"jobs_per_kernel\": " << jobs_per_kernel
         << ",\n  \"geomean_cold_speedup\": " << cold_geo
         << ",\n  \"geomean_aggregate_speedup\": " << agg_geo
         << ",\n  \"index_missing\": " << trace::index_missing_count()
         << ",\n  \"saturation\": {\"capacity\": " << sat_capacity
         << ", \"submissions\": " << sat_submissions << ", \"accepted\": " << accepted
         << ", \"rejected\": " << rejected << ", \"peak_queue\": " << peak_queue
         << ", \"drain_ms\": " << drain_ms << ", \"jobs_per_sec\": " << drain_jobs_per_sec
         << ", \"lost\": " << lost << "},\n  \"kernels\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const KernelPoint& pt = points[i];
      json << "    {\"name\": \"" << pt.name << "\", \"sim_cycles\": " << pt.cycles
           << ", \"races\": " << pt.races << ", \"trace_bytes\": " << pt.trace_bytes
           << ", \"live_kips\": " << pt.live_kips << ", \"cold_kips\": " << pt.cold_kips
           << ", \"aggregate_kips\": " << pt.aggregate_kips
           << ", \"cold_speedup\": " << pt.cold_speedup
           << ", \"aggregate_speedup\": " << pt.aggregate_speedup
           << ", \"memo_hit_rate\": " << pt.memo_hit_rate << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
  }

  // Smoke verifies the plumbing; the full run enforces the headline.
  if (!smoke) {
    if (agg_geo < 100.0) {
      std::fprintf(stderr, "FAIL: aggregate geomean speedup %.1fx below the 100x target\n",
                   agg_geo);
      return 1;
    }
    if (peak_queue < 1000.0) {
      std::fprintf(stderr, "FAIL: saturation peaked at %.0f queued jobs (< 1000)\n",
                   peak_queue);
      return 1;
    }
  }
  if (rejected == 0) {
    std::fprintf(stderr, "FAIL: overload never rejected a submission\n");
    return 1;
  }
  return 0;
}
