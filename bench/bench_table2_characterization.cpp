// Table II: benchmark characteristics — the memory-instruction mix of
// each application (shares of shared-memory and global-memory accesses,
// barrier/fence/atomic usage). Inputs are scaled down from the paper's
// (see DESIGN.md); the mix, not absolute counts, is the reproduced shape.
#include "bench/harness.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Table II — benchmark characterization", "Table II");

  TablePrinter table({"Benchmark", "WarpInst", "Mem%", "SharedRd%", "SharedWr%", "GlobalRd%",
                      "GlobalWr%", "Atomics", "Barriers", "Fences"});
  for (const auto& info : kernels::all_benchmarks()) {
    sim::SimResult r = bench::run_benchmark(info.name, bench::detection_off());
    const f64 inst = static_cast<f64>(r.warp_instructions);
    table.add_row({info.name, std::to_string(r.warp_instructions),
                   TablePrinter::pct(static_cast<f64>(r.memory_instructions()) / inst),
                   TablePrinter::pct(static_cast<f64>(r.shared_reads) / inst),
                   TablePrinter::pct(static_cast<f64>(r.shared_writes) / inst),
                   TablePrinter::pct(static_cast<f64>(r.global_reads) / inst),
                   TablePrinter::pct(static_cast<f64>(r.global_writes) / inst),
                   std::to_string(r.shared_atomics + r.global_atomics),
                   std::to_string(r.barriers), std::to_string(r.fences)});
  }
  table.print();
  return 0;
}
