// Live-pipeline hot-path throughput: runs the full ten-kernel suite
// through the live cycle-level simulator (combined shared+global
// detection — the heaviest configuration every experiment pays for) and
// reports host wall time plus simulated kilocycles per second (KIPS) per
// kernel and as a geometric mean. This is the figure of merit for the
// allocation-free hot-path work: the trace replayer proves the detection
// math itself is cheap, so whatever the live path loses on top of it is
// simulator overhead.
//
//   bench_hotpath [--json BENCH_hotpath.json]
//                 [--baseline scripts/perf_baseline.json]
//                 [--write-baseline scripts/perf_baseline.json]
//                 [--max-regress 0.25]
//
// With --baseline, the per-kernel and geomean KIPS of the baseline file
// are embedded in the JSON as the "before" numbers and the speedup is
// printed. With --max-regress R the process exits 1 when the measured
// geomean KIPS falls more than R below the baseline's (the perf-smoke
// gate). Set HACCRG_PROFILE=1 to append the engine's per-phase cycle
// budget to the report.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"

namespace {

using namespace haccrg;

/// Minimal scan for `"key": <number>` in a JSON file written by this
/// binary (or a hand-maintained baseline). Returns 0.0 when absent.
f64 json_number(const std::string& text, const std::string& key, size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle, from);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct KernelPoint {
  std::string name;
  u64 cycles = 0;
  f64 wall_ms = 0.0;
  f64 kips = 0.0;
  f64 baseline_kips = 0.0;  ///< 0 when no baseline was given
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_hotpath.json";
  std::string baseline_path;
  std::string write_baseline_path;
  f64 max_regress = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--write-baseline") == 0 && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-regress") == 0 && i + 1 < argc) {
      max_regress = std::strtod(argv[++i], nullptr);
    }
  }

  bench::print_header("Live hot-path throughput (KIPS)", "the simulation substrate of Figs. 7-9");

  const std::string baseline_text = read_file(baseline_path);
  if (!baseline_path.empty() && baseline_text.empty()) {
    std::fprintf(stderr, "warning: baseline %s unreadable; reporting without it\n",
                 baseline_path.c_str());
  }

  std::vector<KernelPoint> points;
  std::vector<f64> kips_values, speedups;
  for (const auto& info : kernels::all_benchmarks()) {
    const bench::TimedRun run = bench::run_benchmark_timed(info.name, bench::detection_combined());
    KernelPoint pt;
    pt.name = info.name;
    pt.cycles = run.result.cycles;
    pt.wall_ms = run.wall_ms;
    pt.kips = run.kilocycles_per_sec;
    if (!baseline_text.empty()) {
      // Per-kernel baselines live as {"name": "X", ... "kips": N} entries.
      const size_t at = baseline_text.find("\"" + pt.name + "\"");
      if (at != std::string::npos) pt.baseline_kips = json_number(baseline_text, "kips", at);
    }
    points.push_back(pt);
    kips_values.push_back(pt.kips);
    if (pt.baseline_kips > 0.0) speedups.push_back(pt.kips / pt.baseline_kips);
  }

  const f64 geo = geomean(kips_values);
  const f64 baseline_geo =
      baseline_text.empty() ? 0.0 : json_number(baseline_text, "geomean_kips");

  TablePrinter table({"Benchmark", "Cycles", "Wall ms", "KIPS", "Before", "Speedup"});
  for (const KernelPoint& pt : points) {
    table.add_row({pt.name, std::to_string(pt.cycles), TablePrinter::fmt(pt.wall_ms, 1),
                   TablePrinter::fmt(pt.kips, 0),
                   pt.baseline_kips > 0.0 ? TablePrinter::fmt(pt.baseline_kips, 0) : "-",
                   pt.baseline_kips > 0.0 ? TablePrinter::fmt(pt.kips / pt.baseline_kips, 2)
                                          : "-"});
  }
  table.add_row({"GEOMEAN", "-", "-", TablePrinter::fmt(geo, 0),
                 baseline_geo > 0.0 ? TablePrinter::fmt(baseline_geo, 0) : "-",
                 baseline_geo > 0.0 ? TablePrinter::fmt(geo / baseline_geo, 2) : "-"});
  table.print();

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("\nhost hardware threads: %u\n", hw_threads);
  if (baseline_geo > 0.0)
    std::printf("geomean KIPS vs baseline: %.0f / %.0f = %.2fx\n", geo, baseline_geo,
                geo / baseline_geo);

  auto dump = [&](const std::string& path, bool with_baseline) {
    std::ofstream json(path, std::ios::trunc);
    if (!json.good()) {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
      return;
    }
    json << "{\n  \"bench\": \"hotpath\",\n";
    json << "  " << bench::host_concurrency_json() << ",\n";
    json << "  \"kernels\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const KernelPoint& pt = points[i];
      json << "    {\"name\": \"" << pt.name << "\", \"cycles\": " << pt.cycles
           << ", \"wall_ms\": " << pt.wall_ms << ", \"kips\": " << pt.kips;
      if (with_baseline && pt.baseline_kips > 0.0) {
        json << ", \"before_kips\": " << pt.baseline_kips
             << ", \"speedup\": " << pt.kips / pt.baseline_kips;
      }
      json << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"geomean_kips\": " << geo;
    if (with_baseline && baseline_geo > 0.0) {
      json << ",\n  \"before_geomean_kips\": " << baseline_geo;
      json << ",\n  \"geomean_speedup\": " << geo / baseline_geo;
    }
    json << "\n}\n";
    std::printf("wrote %s\n", path.c_str());
  };

  dump(json_path, /*with_baseline=*/true);
  if (!write_baseline_path.empty()) dump(write_baseline_path, /*with_baseline=*/false);

  if (max_regress >= 0.0 && baseline_geo > 0.0 && geo < baseline_geo * (1.0 - max_regress)) {
    std::fprintf(stderr, "PERF REGRESSION: geomean KIPS %.0f is more than %.0f%% below baseline %.0f\n",
                 geo, max_regress * 100.0, baseline_geo);
    return 1;
  }
  return 0;
}
