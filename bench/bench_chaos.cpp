// Chaos campaign for the detection service: deterministic fault
// injection at every serving-layer site (fault/fault.hpp, serve_*
// keys), driven through the real frame path, with the robustness
// contract asserted after every storm:
//
//   1. every accepted job reaches exactly one terminal state — done,
//      failed, cancelled, or timed-out; nothing is lost in a drain and
//      querying a result twice returns the same answer both times,
//   2. the terminal-state counters reconcile: completed + failed +
//      cancelled + timed_out == submitted, queue empty after drain,
//   3. worker-side failures are contained (a poisoned image quarantines
//      instead of wedging a worker), deadlines time out instead of
//      hanging, a drain timeout cancels what it must and nothing else,
//   4. a zero-rate plan is really zero: serving reports stay
//      byte-identical across server/job worker counts {1, 2, 8}, and
//   5. a cancelled replay overruns by at most one granule batch
//      (trace/replay.hpp kCancelCheckInterval).
//
//   bench_chaos [--smoke] [--seeds N] [--jobs N] [--json BENCH_chaos.json]
//
// Exits 1 when any invariant fails. --smoke shrinks the workload, not
// the invariants — it is the CI gate (scripts/check.sh).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "fault/fault.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"

namespace {

using namespace haccrg;

int failures = 0;

void check(bool ok, const char* what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAIL: %s\n", what);
}

std::vector<u8> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string s = buf.str();
  return std::vector<u8>(s.begin(), s.end());
}

/// Minimal scan for `"key": <number>` in JSON written by this repo.
i64 json_count(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1;
  return static_cast<i64>(std::strtoll(text.c_str() + pos + needle.size(), nullptr, 10));
}

/// Record one REDUCE run as a v2 trace — the campaign's good image.
std::vector<u8> record_trace() {
  const std::string path = "bench_chaos.trc";
  bool completed = false;
  {
    // The trace file is flushed when the Gpu is destroyed — read it
    // only after this scope closes.
    sim::SimConfig cfg = sim::SimConfig::from_env();
    cfg.trace_path = path;
    cfg.trace_index = true;
    sim::Gpu gpu(bench::experiment_gpu(), bench::detection_combined(), cfg);
    kernels::PreparedKernel prep = kernels::find_benchmark("REDUCE")->prepare(gpu, {});
    completed = gpu.launch(prep.launch()).completed;
  }
  std::vector<u8> bytes = read_bytes(path);
  std::remove(path.c_str());
  if (!completed) bytes.clear();
  return bytes;
}

bool terminal(serve::JobState s) {
  return s == serve::JobState::kDone || s == serve::JobState::kFailed ||
         s == serve::JobState::kCancelled || s == serve::JobState::kTimedOut;
}

struct SeedOutcome {
  u64 seed = 0;
  u64 accepted = 0;
  u64 final_rejections = 0;  ///< submits still rejected after retries
  u64 frame_errors = 0;      ///< submits answered ERR by a mangled frame
  u64 done = 0, failed = 0, cancelled = 0, timed_out = 0;
  u64 injected_total = 0;
  u64 client_retries = 0;
  std::string stats;
};

/// One storm: every serving site armed, a mixed workload (good image,
/// slice jobs, per-seed corrupt variants, a deadline batch) pushed
/// through the retrying client, then a full drain and the audit.
SeedOutcome run_storm(const std::vector<u8>& good, u64 seed, u32 jobs) {
  SeedOutcome out;
  out.seed = seed;

  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_queue = 16;  // small on purpose: queue-full is part of the storm
  cfg.quarantine_threshold = 3;
  cfg.fault_stall_ms = 20;
  cfg.deadline_grace_ms = 100;
  cfg.watchdog_interval_ms = 5;
  cfg.faults.seed = seed;
  cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeFrameTruncate)] = 60'000;
  cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeFrameCorrupt)] = 60'000;
  cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeDecodeCorrupt)] = 120'000;
  cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeWorkerStall)] = 200'000;
  cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeQueueReject)] = 100'000;
  serve::Server server(cfg);

  serve::ClientConfig ccfg;
  ccfg.seed = seed;
  ccfg.max_attempts = 4;
  ccfg.sleep_ms = [](u32) {};  // virtual time: backoff is counted, not slept
  serve::Client client = serve::Client::in_process(server, ccfg);

  std::vector<u64> ids;
  for (u32 j = 0; j < jobs; ++j) {
    std::vector<u8> image = good;
    i64 kernel = -1;
    u32 deadline_ms = 0;
    switch (j % 5) {
      case 0: break;               // whole-trace job over the good image
      case 1: kernel = 0; break;   // slice job (index seek path)
      case 2:                      // per-seed corrupt variant → kFailed
        image[(seed * 7919 + j * 131) % image.size()] ^= 0x40;
        break;
      case 3: deadline_ms = 4; break;  // tight deadline; stalls → kTimedOut
      case 4: break;               // repeat of case 0 → memo fast path
    }
    u64 id = 0;
    const Status st = client.submit(image, /*workers=*/1 + j % 2, kernel, deadline_ms, id);
    if (st.ok()) {
      ids.push_back(id);
    } else if (st.code() == StatusCode::kUnavailable) {
      ++out.final_rejections;  // retried, still full — honest rejection
    } else {
      // A mangled frame (truncate/corrupt) or a quarantined image:
      // both are terminal ERRs; neither may accept a job.
      ++out.frame_errors;
    }
  }
  out.accepted = ids.size();
  out.client_retries = client.retries();

  server.shutdown();  // full drain: every accepted job settles

  // The audit runs against the API directly — chaos lives on the frame
  // path, verification must not roll those dice.
  for (const u64 id : ids) {
    serve::JobInfo info;
    check(server.status(id, info).ok(), "accepted job vanished after drain");
    check(terminal(info.state), "accepted job not terminal after drain");
    switch (info.state) {
      case serve::JobState::kDone: ++out.done; break;
      case serve::JobState::kFailed: ++out.failed; break;
      case serve::JobState::kCancelled: ++out.cancelled; break;
      case serve::JobState::kTimedOut: ++out.timed_out; break;
      default: break;
    }
    // No lost or duplicated results: two fetches agree bit for bit.
    std::string first, second;
    const Status s1 = server.result(id, false, first);
    const Status s2 = server.result(id, false, second);
    check(s1.code() == s2.code() && first == second,
          "result changed between two queries");
    check(s1.code() != StatusCode::kUnavailable, "job still unsettled after drain");
    check(s1.code() != StatusCode::kNotFound, "job lost after drain");
  }

  out.stats = server.stats_json();
  check(json_count(out.stats, "queue_depth") == 0, "queue not empty after drain");
  const i64 submitted = json_count(out.stats, "submitted");
  const i64 settled = json_count(out.stats, "completed") + json_count(out.stats, "failed") +
                      json_count(out.stats, "cancelled") + json_count(out.stats, "timed_out");
  check(submitted == static_cast<i64>(out.accepted), "accepted count disagrees with stats");
  check(settled == submitted, "terminal-state counters do not reconcile with submissions");
  check(json_count(out.stats, "completed") == static_cast<i64>(out.done) &&
            json_count(out.stats, "failed") == static_cast<i64>(out.failed) &&
            json_count(out.stats, "cancelled") == static_cast<i64>(out.cancelled) &&
            json_count(out.stats, "timed_out") == static_cast<i64>(out.timed_out),
        "observed terminal states disagree with stats counters");
  // Failures must be attributable: an injected decode corruption, a
  // frame corruption that reached the body, or nothing — a fault-free
  // job over the good image never fails.
  const i64 decode_faults = std::max<i64>(0, json_count(out.stats, "fault.serve_decode_corrupt"));
  const i64 frame_faults =
      std::max<i64>(0, json_count(out.stats, "fault.serve_frame_corrupt")) +
      std::max<i64>(0, json_count(out.stats, "fault.serve_frame_truncate"));
  check(static_cast<i64>(out.failed) <=
            decode_faults + frame_faults + static_cast<i64>((jobs + 4) / 5),
        "more failures than injected faults and corrupt submissions can explain");
  for (u32 i = fault::kFirstServeSite; i < fault::kNumFaultSites; ++i) {
    const i64 n = json_count(
        out.stats, "fault." + std::string(fault::fault_site_key(static_cast<fault::FaultSite>(i))));
    if (n > 0) out.injected_total += static_cast<u64>(n);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  u32 seeds = 3;
  u32 jobs = 60;
  bool jobs_explicit = false;
  std::string json_path = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 1) seeds = static_cast<u32>(v);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 1) {
        jobs = static_cast<u32>(v);
        jobs_explicit = true;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_chaos [--smoke] [--seeds N] [--jobs N] [--json FILE]\n");
      return 2;
    }
  }
  if (smoke) {
    seeds = 2;
    if (!jobs_explicit) jobs = 25;
  }

  bench::print_header("Serving chaos campaign",
                      "fault-injected storms against the detection service");

  const std::vector<u8> good = record_trace();
  if (good.empty()) {
    std::fprintf(stderr, "bench_chaos: trace recording failed\n");
    return 1;
  }

  // --- 1. Zero-rate identity: no faults, no deadlines, any worker mix ------
  // The robustness machinery must be invisible when disarmed: the same
  // report, byte for byte, from every server/job worker combination.
  std::string reference;
  for (const u32 server_workers : {1u, 2u, 8u}) {
    for (const u32 job_workers : {1u, 2u, 8u}) {
      serve::ServerConfig cfg;
      cfg.workers = server_workers;
      serve::Server server(cfg);
      u64 id = 0;
      Status st = server.submit(good, job_workers, -1, id);
      std::string report;
      if (st.ok()) st = server.result(id, true, report);
      check(st.ok(), "zero-rate job failed");
      if (reference.empty()) reference = report;
      check(report == reference,
            "zero-rate report differs across worker counts (determinism broken)");
      server.shutdown();
    }
  }
  std::printf("zero-rate identity: reports byte-identical across workers {1,2,8} x jobs {1,2,8}\n");

  // --- 2. Bounded overrun: a cancelled replay stops within one batch -------
  u64 overrun_events = 0;
  {
    trace::TraceReader reader(good);
    trace::DecodedTrace decoded;
    check(trace::decode_trace(reader, decoded).ok(), "decode of the good image failed");
    trace::CancelToken token;
    token.cancel();
    trace::ReplayOptions opts;
    opts.cancel = &token;
    const trace::ReplayResult r = trace::replay_decoded(decoded, opts);
    check(!r.ok && r.code == StatusCode::kDeadlineExceeded,
          "pre-cancelled replay did not abort with kDeadlineExceeded");
    overrun_events = r.total_events;
    check(overrun_events <= trace::kCancelCheckInterval,
          "cancelled replay overran the granule batch bound");
  }
  std::printf("bounded overrun: cancelled replay stopped after %llu events (bound %llu)\n",
              static_cast<unsigned long long>(overrun_events),
              static_cast<unsigned long long>(trace::kCancelCheckInterval));

  // --- 3. Quarantine: a failing image becomes a poison pill ----------------
  {
    serve::ServerConfig cfg;
    cfg.workers = 1;
    cfg.quarantine_threshold = 3;
    serve::Server server(cfg);
    std::vector<u8> poison = good;
    poison.resize(poison.size() - poison.size() / 3);  // truncated mid-event:
                                                       // decode refuses it every time
    u32 accepted = 0, rejected_corrupt = 0;
    for (u32 i = 0; i < 5; ++i) {
      u64 id = 0;
      const Status st = server.submit(poison, 1, -1, id);
      if (st.ok()) {
        ++accepted;
        std::string r;
        const Status rs = server.result(id, true, r);
        check(!rs.ok(), "poison image produced a report");
      } else {
        check(st.code() == StatusCode::kCorrupt, "quarantine rejection has the wrong code");
        ++rejected_corrupt;
      }
    }
    const std::string stats = server.stats_json();
    check(accepted == 3 && rejected_corrupt == 2,
          "quarantine did not engage at the threshold");
    check(json_count(stats, "quarantined") == 1, "quarantined image count wrong");
    check(json_count(stats, "quarantine_rejected") == 2, "quarantine_rejected count wrong");
    server.shutdown();
    std::printf("quarantine: image poisoned after 3 failures, %u resubmissions refused\n",
                rejected_corrupt);
  }

  // --- 4. Deadlines: stalled jobs time out, workers survive ----------------
  u64 deadline_timeouts = 0;
  {
    serve::ServerConfig cfg;
    cfg.workers = 2;
    cfg.memoize = false;  // every job must replay (and therefore stall)
    cfg.default_deadline_ms = 5;
    cfg.deadline_grace_ms = 60;
    cfg.watchdog_interval_ms = 2;
    cfg.fault_stall_ms = 40;
    cfg.faults.seed = 7;
    cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeWorkerStall)] = 1'000'000;
    serve::Server server(cfg);
    std::vector<u64> ids;
    for (u32 i = 0; i < 6; ++i) {
      u64 id = 0;
      check(server.submit(good, 1, -1, id).ok(), "deadline-phase submit failed");
      ids.push_back(id);
    }
    server.shutdown();
    for (const u64 id : ids) {
      std::string r;
      const Status st = server.result(id, false, r);
      check(st.code() == StatusCode::kDeadlineExceeded,
            "stalled job under a deadline did not surface kDeadlineExceeded");
    }
    const std::string stats = server.stats_json();
    deadline_timeouts = static_cast<u64>(std::max<i64>(0, json_count(stats, "timed_out")));
    check(deadline_timeouts == 6, "stalled jobs under a 5ms deadline did not all time out");
    check(json_count(stats, "completed") + json_count(stats, "failed") +
                  json_count(stats, "cancelled") + json_count(stats, "timed_out") ==
              json_count(stats, "submitted"),
          "deadline phase counters do not reconcile");
    std::printf("deadlines: %llu stalled jobs timed out (late results: %lld, "
                "arena recycles: %lld)\n",
                static_cast<unsigned long long>(deadline_timeouts),
                static_cast<long long>(json_count(stats, "late_results")),
                static_cast<long long>(json_count(stats, "arena_recycles")));
  }

  // --- 5. Drain timeout: queued jobs are cancelled, not lost ---------------
  {
    serve::ServerConfig cfg;
    cfg.workers = 1;
    cfg.memoize = false;
    cfg.fault_stall_ms = 50;
    cfg.faults.seed = 11;
    cfg.faults.rate_ppm[static_cast<u32>(fault::FaultSite::kServeWorkerStall)] = 1'000'000;
    serve::Server server(cfg);
    std::vector<u64> ids;
    for (u32 i = 0; i < 6; ++i) {
      u64 id = 0;
      check(server.submit(good, 1, -1, id).ok(), "drain-phase submit failed");
      ids.push_back(id);
    }
    server.shutdown(/*drain_timeout_ms=*/20);
    const std::string stats = server.stats_json();
    const i64 drain_cancelled = json_count(stats, "drain_cancelled");
    check(drain_cancelled >= 1, "drain timeout cancelled nothing despite a stalled worker");
    for (const u64 id : ids) {
      serve::JobInfo info;
      check(server.status(id, info).ok() && terminal(info.state),
            "job neither finished nor cancelled after the drain timeout");
    }
    check(json_count(stats, "completed") + json_count(stats, "failed") +
                  json_count(stats, "cancelled") + json_count(stats, "timed_out") ==
              json_count(stats, "submitted"),
          "drain-timeout phase counters do not reconcile");
    std::printf("drain timeout: %lld queued jobs cancelled, the rest settled\n",
                static_cast<long long>(drain_cancelled));
  }

  // --- 6. The storms: every site armed, per-seed audit ---------------------
  std::vector<SeedOutcome> storms;
  for (u32 s = 0; s < seeds; ++s) storms.push_back(run_storm(good, 0x5eed + s, jobs));

  TablePrinter table({"Seed", "Accepted", "Done", "Failed", "TimedOut", "Rejected",
                      "FrameErr", "Injected", "Retries"});
  for (const SeedOutcome& o : storms) {
    table.add_row({std::to_string(o.seed), std::to_string(o.accepted), std::to_string(o.done),
                   std::to_string(o.failed), std::to_string(o.timed_out),
                   std::to_string(o.final_rejections), std::to_string(o.frame_errors),
                   std::to_string(o.injected_total), std::to_string(o.client_retries)});
  }
  table.print();

  u64 total_injected = 0;
  for (const SeedOutcome& o : storms) total_injected += o.injected_total;
  check(total_injected > 0, "the storms injected nothing — rates or sites are dead");

  // --- JSON -----------------------------------------------------------------
  std::ofstream json(json_path, std::ios::trunc);
  if (json.good()) {
    json << "{\n  \"bench\": \"chaos\",\n  \"smoke\": " << (smoke ? "true" : "false")
         << ",\n  \"jobs_per_storm\": " << jobs
         << ",\n  \"overrun_events\": " << overrun_events
         << ",\n  \"overrun_bound\": " << trace::kCancelCheckInterval
         << ",\n  \"deadline_timeouts\": " << deadline_timeouts
         << ",\n  \"invariant_failures\": " << failures << ",\n  \"storms\": [\n";
    for (size_t i = 0; i < storms.size(); ++i) {
      const SeedOutcome& o = storms[i];
      json << "    {\"seed\": " << o.seed << ", \"accepted\": " << o.accepted
           << ", \"done\": " << o.done << ", \"failed\": " << o.failed
           << ", \"cancelled\": " << o.cancelled << ", \"timed_out\": " << o.timed_out
           << ", \"final_rejections\": " << o.final_rejections
           << ", \"frame_errors\": " << o.frame_errors
           << ", \"injected\": " << o.injected_total
           << ", \"client_retries\": " << o.client_retries << "}"
           << (i + 1 < storms.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "bench_chaos: %d invariant failure(s)\n", failures);
    return 1;
  }
  std::printf("all chaos invariants held (%u storms x %u jobs)\n", seeds, jobs);
  return 0;
}
