// Section VI-C2: hardware overhead of the RDUs — comparator counts and
// storage — from the analytic cost model.
#include "bench/harness.hpp"
#include "haccrg/hardware_cost.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Hardware overhead (control logic and storage)", "Section VI-C2");

  const arch::GpuConfig gpu = bench::experiment_gpu();
  const rd::HaccrgConfig det = bench::detection_combined();
  const rd::HardwareCost cost = rd::compute_hardware_cost(gpu, det);
  std::printf("%s\n", cost.describe().c_str());
  std::printf("Paper reference points: 8x12-bit comparators per SM at 16 B shared\n"
              "granularity; 32x28-bit + 16x24-bit comparators per memory slice at 4 B\n"
              "global granularity; 4.5 KB shared shadow per (48 KB) Fermi SM; ~3 KB of ID\n"
              "registers per SM; 0.75 KB race register file per slice.\n");
  return 0;
}
