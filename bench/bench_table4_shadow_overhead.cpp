// Table IV: global-memory shadow footprint per benchmark at 4-byte
// tracking granularity, plus the coarser granularities' savings. The
// absolute sizes differ from the paper (inputs are scaled down); the
// reproduced shape is the footprint's proportionality to each
// benchmark's heap and its inverse scaling with granularity.
#include "bench/harness.hpp"
#include "haccrg/global_rdu.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Table IV — global shadow memory overhead", "Table IV");

  TablePrinter table({"Benchmark", "App heap", "Shadow@4B", "Shadow@16B", "Shadow@64B",
                      "Ratio@4B"});
  for (const auto& info : kernels::all_benchmarks()) {
    // Prepare (allocates the workload) without running to size the heap.
    sim::Gpu gpu(bench::experiment_gpu(), bench::detection_off());
    kernels::PreparedKernel prep = info.prepare(gpu, {});
    const u32 heap = gpu.allocator().heap_top();
    const u32 s4 = rd::GlobalRdu::shadow_bytes_for(heap, 4);
    const u32 s16 = rd::GlobalRdu::shadow_bytes_for(heap, 16);
    const u32 s64 = rd::GlobalRdu::shadow_bytes_for(heap, 64);
    auto kb = [](u32 bytes) { return TablePrinter::fmt(bytes / 1024.0, 1) + " KB"; };
    table.add_row({info.name, kb(heap), kb(s4), kb(s16), kb(s64),
                   TablePrinter::fmt(static_cast<f64>(s4) / heap, 2) + "x"});
  }
  table.print();
  std::printf("\nEach 4-byte granule carries an 8-byte shadow entry (the paper's 52-bit\n"
              "entry padded to a power of two), so the 4-byte-granularity overhead is 2x\n"
              "the application heap; coarser tracking divides it proportionally.\n");
  return 0;
}
