// Shared helpers for the table/figure reproduction harnesses. Each bench
// binary regenerates one table or figure of the paper; EXPERIMENTS.md
// records paper-vs-measured values.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include <memory>

#include "analysis/static_race.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "kernels/common.hpp"
#include "sim/gpu.hpp"

namespace haccrg::bench {

/// The experiment GPU: the paper's Table I machine (30 SMs, 8 slices).
inline arch::GpuConfig experiment_gpu() {
  arch::GpuConfig cfg;  // defaults follow Table I
  cfg.device_mem_bytes = 64u * 1024u * 1024u;
  return cfg;
}

/// Detection configurations used across experiments.
inline rd::HaccrgConfig detection_off() { return rd::HaccrgConfig{}; }

inline rd::HaccrgConfig detection_shared_only() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.shared_granularity = 16;  // the paper's chosen operating point
  return cfg;
}

inline rd::HaccrgConfig detection_combined() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 16;
  cfg.global_granularity = 4;
  return cfg;
}

/// Word-granularity detection (the effectiveness study's setting).
inline rd::HaccrgConfig detection_word() {
  rd::HaccrgConfig cfg;
  cfg.enable_shared = true;
  cfg.enable_global = true;
  cfg.shared_granularity = 4;
  cfg.global_granularity = 4;
  return cfg;
}

/// Workload scale for the performance experiments: enough blocks to keep
/// the 30-SM machine loaded (the paper runs full-size inputs; see the
/// scaling notes in DESIGN.md).
constexpr u32 kExperimentScale = 4;

/// One bench execution plus host-side throughput: how long the simulation
/// took on the wall clock and how many simulated kilocycles it retired per
/// second of host time. KIPS is the figure of merit the parallel engine is
/// judged by — it is comparable across machines in a way raw wall time is
/// not, and its ratio between thread counts is the engine speedup.
struct TimedRun {
  sim::SimResult result;
  f64 wall_ms = 0.0;
  f64 kilocycles_per_sec = 0.0;
};

/// Run one benchmark under one detection config; aborts on sim errors.
/// `sim_config` defaults to the environment (HACCRG_THREADS) so every
/// existing bench binary picks up the parallel engine without changes.
inline TimedRun run_benchmark_timed(const std::string& name, const rd::HaccrgConfig& det,
                                    kernels::BenchOptions opts = {},
                                    const sim::SimConfig& sim_config = sim::SimConfig::from_env()) {
  if (opts.scale == 1) opts.scale = kExperimentScale;
  const kernels::BenchmarkInfo* info = kernels::find_benchmark(name);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", name.c_str());
    std::abort();
  }
  sim::Gpu gpu(experiment_gpu(), det, sim_config);
  kernels::PreparedKernel prep = info->prepare(gpu, opts);
  const auto t0 = std::chrono::steady_clock::now();
  sim::SimResult result = gpu.launch(prep.launch());
  const auto t1 = std::chrono::steady_clock::now();
  if (!result.completed) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(), result.error.c_str());
    std::abort();
  }
  TimedRun run;
  run.wall_ms = std::chrono::duration<f64, std::milli>(t1 - t0).count();
  run.kilocycles_per_sec =
      run.wall_ms > 0.0 ? static_cast<f64>(result.cycles) / run.wall_ms : 0.0;
  run.result = std::move(result);
  return run;
}

inline sim::SimResult run_benchmark(const std::string& name, const rd::HaccrgConfig& det,
                                    kernels::BenchOptions opts = {}) {
  return run_benchmark_timed(name, det, opts).result;
}

/// Like run_benchmark but with the static RDU filter engaged: the kernel
/// is analyzed at the detector's granularities and provably-safe
/// accesses skip their shadow checks. Detection results must match the
/// unfiltered run; `rd.static_filtered` in the stats counts the skips.
inline sim::SimResult run_benchmark_static_filtered(const std::string& name,
                                                    rd::HaccrgConfig det,
                                                    kernels::BenchOptions opts = {}) {
  if (opts.scale == 1) opts.scale = kExperimentScale;
  det.static_filter = true;
  const kernels::BenchmarkInfo* info = kernels::find_benchmark(name);
  if (info == nullptr) {
    std::fprintf(stderr, "unknown benchmark %s\n", name.c_str());
    std::abort();
  }
  sim::Gpu gpu(experiment_gpu(), det);
  kernels::PreparedKernel prep = info->prepare(gpu, opts);
  analysis::AnalyzeOptions aopts;
  aopts.shared_granularity = det.shared_granularity;
  aopts.global_granularity = det.global_granularity;
  prep.static_report =
      std::make_shared<analysis::StaticRaceReport>(analysis::analyze(prep.program, aopts));
  sim::SimResult result = gpu.launch(prep.launch());
  if (!result.completed) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(), result.error.c_str());
    std::abort();
  }
  return result;
}

/// Host-concurrency provenance for BENCH_*.json writers. Throughput
/// numbers are meaningless without knowing how many hardware threads
/// backed them, and whether the run oversubscribed the host (threads
/// beyond the hardware count measure scheduler churn, not speedup) —
/// every writer embeds these fields next to its timing data.
/// `threads_used` is the widest worker count the bench configured.
inline std::string host_concurrency_json(u32 threads_used) {
  const u32 hw = std::thread::hardware_concurrency();
  const bool oversubscribed = hw > 0 && threads_used > hw;
  return "\"host_hardware_threads\": " + std::to_string(hw) +
         ", \"threads_used\": " + std::to_string(threads_used) +
         ", \"oversubscribed\": " + (oversubscribed ? "true" : "false");
}

/// Convenience overload: the engine thread count the environment
/// (HACCRG_THREADS) selects, which is what most benches run with.
inline std::string host_concurrency_json() {
  return host_concurrency_json(sim::SimConfig::from_env().num_threads);
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n(reproduces %s of 'HAccRG: Hardware-Accelerated Data Race "
              "Detection in GPUs', ICPP 2013)\n\n",
              title.c_str(), paper_ref.c_str());
}

}  // namespace haccrg::bench
