// Trace-driven replay throughput: how much faster the detectors run when
// fed a recorded access trace instead of the full timing simulation. Per
// registry kernel this measures (1) the live combined-detection run,
// (2) a recording run producing the trace, and (3) trace replay through
// the same SharedRdu/GlobalRdu pipeline, then verifies the replayed race
// set is identical to the live one and reports the KIPS ratio. Replay
// skips the pipeline, caches, interconnect and DRAM model, so the
// speedup is expected to be well over 10x.
//
//   bench_trace_replay [--repeat N] [--json BENCH_trace.json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "trace/replay.hpp"

int main(int argc, char** argv) {
  using namespace haccrg;

  u32 repeat = 3;
  std::string json_path = "BENCH_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 1) repeat = static_cast<u32>(v);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  bench::print_header("Trace-driven detection replay throughput", "the detection pipeline");

  struct Row {
    std::string name;
    u64 cycles = 0;
    u64 events = 0;
    f64 live_kips = 0.0;
    f64 replay_kips = 0.0;
    f64 speedup = 0.0;
    u64 races = 0;
  };
  std::vector<Row> rows;
  std::vector<f64> speedups;

  for (const auto& info : kernels::all_benchmarks()) {
    Row row;
    row.name = info.name;

    // Live run, tracing off: the baseline the replay engine is racing.
    const bench::TimedRun live = bench::run_benchmark_timed(info.name, bench::detection_combined());
    row.cycles = live.result.cycles;
    row.live_kips = live.kilocycles_per_sec;

    // Recording run: same workload with the trace writer attached. Its
    // race log is the reference set replay must reproduce.
    const std::string trace_path = std::string("bench_trace_replay_") + info.name + ".trc";
    sim::SimConfig rec_cfg = sim::SimConfig::from_env();
    rec_cfg.trace_path = trace_path;
    const bench::TimedRun recorded =
        bench::run_benchmark_timed(info.name, bench::detection_combined(), {}, rec_cfg);
    if (recorded.result.cycles != live.result.cycles) {
      std::fprintf(stderr, "%s: tracing changed the simulation (%llu vs %llu cycles)\n",
                   info.name.c_str(), static_cast<unsigned long long>(recorded.result.cycles),
                   static_cast<unsigned long long>(live.result.cycles));
      return 1;
    }

    // Replay: best-of-N wall time through the same detector pipeline.
    f64 best_ms = 0.0;
    trace::ReplayResult replayed;
    for (u32 r = 0; r < repeat; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      replayed = trace::replay_trace(trace_path);
      const auto t1 = std::chrono::steady_clock::now();
      const f64 ms = std::chrono::duration<f64, std::milli>(t1 - t0).count();
      if (!replayed.ok) {
        std::fprintf(stderr, "%s: replay failed: %s\n", info.name.c_str(), replayed.error.c_str());
        return 1;
      }
      if (r == 0 || ms < best_ms) best_ms = ms;
    }
    std::remove(trace_path.c_str());

    if (replayed.race_set() != trace::race_identity_set(recorded.result.races)) {
      std::fprintf(stderr, "%s: replay race set differs from the live run\n", info.name.c_str());
      return 1;
    }

    row.events = replayed.total_events;
    row.races = recorded.result.races.unique();
    row.replay_kips = best_ms > 0.0 ? static_cast<f64>(row.cycles) / best_ms : 0.0;
    row.speedup = row.live_kips > 0.0 ? row.replay_kips / row.live_kips : 0.0;
    rows.push_back(row);
    speedups.push_back(row.speedup);
  }

  TablePrinter table({"Benchmark", "SimCycles", "Events", "Races", "LiveKIPS", "ReplayKIPS",
                      "Speedup"});
  for (const Row& row : rows) {
    table.add_row({row.name, std::to_string(row.cycles), std::to_string(row.events),
                   std::to_string(row.races), TablePrinter::fmt(row.live_kips, 0),
                   TablePrinter::fmt(row.replay_kips, 0), TablePrinter::fmt(row.speedup, 1)});
  }
  const f64 gm = geomean(speedups);
  table.add_row({"GEOMEAN", "-", "-", "-", "-", "-", TablePrinter::fmt(gm, 1)});
  table.print();
  std::printf("\nReplay reproduced the live race set for all %zu kernels.\n", rows.size());
  std::printf("Geometric-mean replay speedup: %.1fx (target >= 10x)\n", gm);
  if (gm < 10.0)
    std::printf("WARNING: below the 10x target on this host; replay is still exact.\n");

  std::ofstream json(json_path, std::ios::trunc);
  if (json.good()) {
    json << "{\n  \"bench\": \"trace_replay\",\n  " << bench::host_concurrency_json()
         << ",\n  \"repeat\": " << repeat << ",\n";
    json << "  \"geomean_speedup\": " << gm << ",\n  \"kernels\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      json << "    {\"name\": \"" << row.name << "\", \"sim_cycles\": " << row.cycles
           << ", \"events\": " << row.events << ", \"races\": " << row.races
           << ", \"live_kips\": " << row.live_kips << ", \"replay_kips\": " << row.replay_kips
           << ", \"speedup\": " << row.speedup << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
  }
  return 0;
}
