// Fuzz campaign throughput: generates a seeded batch of kernels and
// drives each through the full differential campaign (hardware HAccRG
// with determinism sweep and static-filter ablation, sw-HAccRG, GRace,
// the static verifier, sampled fault injection — replay checks are the
// CLI's, they need a scratch dir). Reports kernels/sec end to end and
// the oracle-pair coverage per detection class; a campaign violation is
// a hard failure, so this doubles as a larger nightly-sized gate.
//
//   bench_fuzz [--seed N] [--count N] [--smoke] [--json BENCH_fuzz.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "bench/harness.hpp"
#include "fuzz/campaign.hpp"

int main(int argc, char** argv) {
  using namespace haccrg;

  u64 seed = 1;
  u32 count = 100;
  std::string json_path = "BENCH_fuzz.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--count") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v >= 1) count = static_cast<u32>(v);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      count = 20;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  bench::print_header("Seeded fuzz campaign throughput", "every detector in the repo");

  fuzz::CampaignConfig config;
  config.scratch_dir = "";
  config.check_replay = false;

  const auto t0 = std::chrono::steady_clock::now();
  const fuzz::CampaignSummary summary =
      fuzz::run_campaign(seed, count, fuzz::FuzzConfig{}, config, /*progress_every=*/50);
  const auto t1 = std::chrono::steady_clock::now();
  const f64 secs = std::chrono::duration<f64>(t1 - t0).count();
  const f64 kernels_per_sec = secs > 0.0 ? summary.cases / secs : 0.0;

  std::printf("  seed %llu, %u kernels in %.1f s  (%.2f kernels/sec)\n",
              static_cast<unsigned long long>(seed), summary.cases, secs, kernels_per_sec);
  std::printf("  %-16s %s\n", "oracle class", "pairs");
  u32 covered = 0;
  for (u32 c = 0; c < fuzz::kNumOracleClasses; ++c) {
    const auto cls = static_cast<fuzz::OracleClass>(c);
    std::printf("  %-16s %llu\n", std::string(fuzz::oracle_class_name(cls)).c_str(),
                static_cast<unsigned long long>(summary.class_pairs[c]));
    if (summary.class_pairs[c] > 0) ++covered;
  }
  std::printf("  class coverage: %u/%u\n", covered, fuzz::kNumOracleClasses);

  for (const fuzz::FailedCase& failed : summary.failed) {
    for (const std::string& v : failed.violations)
      std::fprintf(stderr, "VIOLATION %s: %s\n", failed.spec.name.c_str(), v.c_str());
  }

  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"fuzz\",\n";
  json << "  " << bench::host_concurrency_json() << ",\n";
  json << "  \"seed\": " << seed << ",\n";
  json << "  \"kernels\": " << summary.cases << ",\n";
  json << "  \"violations\": " << summary.failures << ",\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", kernels_per_sec);
  json << "  \"kernels_per_sec\": " << buf << ",\n";
  json << "  \"class_coverage\": \"" << covered << "/" << fuzz::kNumOracleClasses << "\",\n";
  json << "  \"oracle_pairs\": {";
  for (u32 c = 0; c < fuzz::kNumOracleClasses; ++c) {
    const auto cls = static_cast<fuzz::OracleClass>(c);
    json << (c ? ", " : "") << "\"" << fuzz::oracle_class_name(cls)
         << "\": " << summary.class_pairs[c];
  }
  json << "}\n}\n";
  std::printf("  wrote %s\n", json_path.c_str());

  if (!summary.ok()) {
    std::fprintf(stderr, "bench_fuzz: %u/%u kernels failed the campaign\n", summary.failures,
                 summary.cases);
    return 1;
  }
  return 0;
}
