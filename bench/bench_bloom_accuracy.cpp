// Section VI-A2: Bloom-filter atomic-ID accuracy stress test. Over one
// million lock-address pairs are injected as known different-lock races;
// a race is missed when the two locks' signatures still intersect. The
// paper reports 2-bin signatures beating 4-bin ones at equal size, with
// 8/16/32-bit 2-bin signatures missing 25% / 12.5% / 6.25%.
#include "bench/harness.hpp"
#include "common/rng.hpp"
#include "haccrg/bloom.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Bloom signature accuracy stress test", "Section VI-A2");

  constexpr u32 kPairs = 1'200'000;  // "over 1 million addresses"
  TablePrinter table({"Signature", "Bins", "MissedRaces", "MissRate", "Paper(2-bin)"});
  for (u32 bits : {8u, 16u, 32u}) {
    for (u32 bins : {2u, 4u}) {
      const rd::BloomGeometry geom{bits, bins};
      if (!geom.valid()) continue;
      SplitMix64 gen(0xb10011f1u);
      u64 missed = 0;
      for (u32 i = 0; i < kPairs; ++i) {
        // Two distinct word-aligned lock addresses.
        const Addr a = (gen.next() & 0x3ffffffu) << 2;
        Addr b = (gen.next() & 0x3ffffffu) << 2;
        if (a == b) b ^= 4;
        rd::BloomSignature sa, sb;
        sa.insert(a, geom);
        sb.insert(b, geom);
        // Different locks whose signatures cannot be distinguished: the
        // intersection is not provably empty, so the race is missed.
        if (!rd::BloomSignature::intersection_null(sa, sb, geom)) ++missed;
      }
      const f64 rate = static_cast<f64>(missed) / kPairs;
      std::string paper = "-";
      if (bins == 2) {
        paper = bits == 8 ? "25%" : bits == 16 ? "12.5%" : "6.25%";
      }
      table.add_row({std::to_string(bits) + "-bit", std::to_string(bins),
                     std::to_string(missed), TablePrinter::pct(rate, 2), paper});
    }
  }
  table.print();
  std::printf("\nThe paper selects 16-bit, 2-bin signatures as the cost/accuracy tradeoff.\n");
  return 0;
}
