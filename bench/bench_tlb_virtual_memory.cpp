// Section IV-B "Supporting Virtual Memory": the two proposed TLB designs
// for the dual app/shadow translation — appending a tag bit to a unified
// GPU TLB vs a separate (smaller) shadow TLB. Driven with the real
// global-access traces of the benchmark suite, captured from the
// simulator, plus a random-access stressor. The shape to observe: the
// appended-bit scheme sacrifices application hit rate (shadow entries
// consume unified capacity), while the separate-TLB scheme preserves it
// with far fewer total entries.
#include <vector>

#include "bench/harness.hpp"
#include "common/rng.hpp"
#include "mem/tlb.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Virtual-memory TLB study", "Section IV-B (Supporting Virtual Memory)");

  constexpr u32 kMainEntries = 64;
  constexpr u32 kShadowEntries = 16;
  constexpr u32 kWays = 4;

  TablePrinter table({"Trace", "Scheme", "App hit%", "Shadow hit%", "Main entries",
                      "Shadow entries"});

  auto run_trace = [&](const std::string& name, const std::vector<Addr>& trace,
                       u32 shadow_base) {
    for (mem::TlbMode mode : {mem::TlbMode::kAppendedBit, mem::TlbMode::kSeparateShadowTlb}) {
      mem::DualTlb tlb(mode, kMainEntries, kWays, kShadowEntries);
      for (Addr a : trace) {
        // The shadow region is 2x the heap (8 B per 4 B granule).
        tlb.access(a, shadow_base + a * 2, /*with_shadow=*/true);
      }
      table.add_row({name,
                     mode == mem::TlbMode::kAppendedBit ? "appended-bit" : "separate-tlb",
                     TablePrinter::pct(tlb.stats().app_hit_rate()),
                     TablePrinter::pct(tlb.stats().shadow_hit_rate()),
                     std::to_string(kMainEntries),
                     std::to_string(mode == mem::TlbMode::kSeparateShadowTlb ? kShadowEntries
                                                                             : 0)});
    }
  };

  // Benchmark-derived traces.
  for (const char* name : {"REDUCE", "FWALSH", "HASH"}) {
    std::vector<Addr> trace;
    sim::Gpu gpu(bench::experiment_gpu(), bench::detection_off());
    gpu.set_global_trace(&trace);
    kernels::PreparedKernel prep = kernels::find_benchmark(name)->prepare(gpu, {});
    sim::SimResult r = gpu.launch(prep.launch());
    if (!r.completed) {
      std::fprintf(stderr, "%s failed: %s\n", name, r.error.c_str());
      return 1;
    }
    run_trace(name, trace, gpu.allocator().heap_top());
  }

  // Random stressor over a 16 MB footprint (thrashes a 64-entry TLB).
  {
    std::vector<Addr> trace;
    SplitMix64 rng(0x71bu);
    for (u32 i = 0; i < 200000; ++i) trace.push_back(static_cast<Addr>(rng.next() & 0xffffff));
    run_trace("RANDOM", trace, 0x1000000);
  }

  // The revealing case: a loop whose application pages fill half the
  // main TLB. Alone they fit (near-100% hits); in the appended-bit
  // scheme the shadow pages double the demand to exactly the unified
  // capacity and LRU thrashes both.
  {
    std::vector<Addr> trace;
    for (u32 rep = 0; rep < 200; ++rep) {
      for (u32 page = 0; page < kMainEntries / 2; ++page) trace.push_back(page * 4096);
    }
    run_trace("HALF-TLB LOOP", trace, 0x1000000);
  }

  table.print();
  std::printf("\nThe separate shadow TLB keeps the application hit rate of an unmodified\n"
              "TLB while needing only a fraction of the entries, as Section IV-B argues.\n");
  return 0;
}
