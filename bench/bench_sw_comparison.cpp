// Section VI-B: hardware HAccRG vs its software implementation vs the
// GRace-add instrumentation baseline, on SCAN, HIST, and KMEANS. Paper:
// hardware costs 0.2% / 0.3% / 22.1%; software HAccRG costs 6.6x / 12.4x
// / 18.1x; GRace is orders of magnitude slower than software HAccRG.
//
// Second table: effect of the static race-analysis pruning pass on both
// software tools. Accesses the analyzer proves safe are left
// uninstrumented, so instrumented-site counts and slowdowns drop; on
// race-free kernels (REDUCE, PSUM) the drop must be strict.
#include "bench/harness.hpp"
#include "swrace/grace.hpp"
#include "swrace/sw_haccrg.hpp"

namespace {

using AttachFn = void (*)(haccrg::sim::Gpu&, haccrg::kernels::PreparedKernel&,
                          const haccrg::swrace::InstrumentOptions&,
                          haccrg::swrace::InstrumentStats*);

struct SwRun {
  haccrg::Cycle cycles = 0;
  haccrg::swrace::InstrumentStats stats;
};

SwRun run_with(const std::string& name, AttachFn attach, bool prune) {
  using namespace haccrg;
  sim::Gpu gpu(bench::experiment_gpu(), bench::detection_off());
  kernels::BenchOptions opts;
  opts.scale = bench::kExperimentScale;  // same workload as run_benchmark
  kernels::PreparedKernel prep = kernels::find_benchmark(name)->prepare(gpu, opts);
  SwRun out;
  if (attach != nullptr) {
    swrace::InstrumentOptions iopts;
    iopts.static_prune = prune;
    // Launch geometry is known here, so let the self-run analysis use it
    // for the loop-aware dependence tests.
    iopts.analyze.block_dim = prep.block_dim;
    iopts.analyze.grid_dim = prep.grid_dim;
    attach(gpu, prep, iopts, &out.stats);
  }
  sim::SimResult r = gpu.launch(prep.launch());
  if (!r.completed) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(), r.error.c_str());
    std::abort();
  }
  out.cycles = r.cycles;
  return out;
}

}  // namespace

int main() {
  using namespace haccrg;
  bench::print_header("Hardware vs software race detection", "Section VI-B text");

  TablePrinter table({"Benchmark", "Base", "HW HAccRG", "SW HAccRG", "GRace-add", "HW ovh",
                      "SW slowdown", "GRace slowdown", "GRace/SW"});
  for (const char* name : {"SCAN", "HIST", "KMEANS"}) {
    const Cycle base = run_with(name, nullptr, false).cycles;
    const Cycle hw = bench::run_benchmark(name, bench::detection_combined()).cycles;
    const Cycle sw = run_with(name, &swrace::attach_sw_haccrg, false).cycles;
    const Cycle grace = run_with(name, &swrace::attach_grace, false).cycles;
    table.add_row({name, std::to_string(base), std::to_string(hw), std::to_string(sw),
                   std::to_string(grace),
                   TablePrinter::pct(static_cast<f64>(hw) / base - 1.0),
                   TablePrinter::fmt(static_cast<f64>(sw) / base, 1) + "x",
                   TablePrinter::fmt(static_cast<f64>(grace) / base, 1) + "x",
                   TablePrinter::fmt(static_cast<f64>(grace) / sw, 1) + "x"});
  }
  table.print();
  std::printf("\nPaper: HW 0.2%%/0.3%%/22.1%%; SW 6.6x/12.4x/18.1x; GRace ~100x the SW cost.\n");

  bench::print_header("Static-analysis pruning of software instrumentation",
                      "analysis::analyze front-end");
  TablePrinter prune_table({"Benchmark", "Tool", "Sites", "Instr (full)", "Instr (pruned)",
                            "Slowdown full", "Slowdown pruned"});
  bool strict_ok = true;
  for (const char* name : {"SCAN", "HIST", "KMEANS", "REDUCE", "PSUM"}) {
    const Cycle base = run_with(name, nullptr, false).cycles;
    const struct {
      const char* tool;
      AttachFn attach;
    } tools[] = {{"SW HAccRG", &swrace::attach_sw_haccrg}, {"GRace-add", &swrace::attach_grace}};
    for (const auto& tool : tools) {
      const SwRun full = run_with(name, tool.attach, false);
      const SwRun pruned = run_with(name, tool.attach, true);
      prune_table.add_row({name, tool.tool, std::to_string(full.stats.sites_total),
                           std::to_string(full.stats.sites_instrumented),
                           std::to_string(pruned.stats.sites_instrumented),
                           TablePrinter::fmt(static_cast<f64>(full.cycles) / base, 2) + "x",
                           TablePrinter::fmt(static_cast<f64>(pruned.cycles) / base, 2) + "x"});
      // Acceptance: strictly fewer instrumented sites and cycles on the
      // race-free kernels.
      const bool race_free = std::string(name) == "REDUCE" || std::string(name) == "PSUM";
      if (race_free && (pruned.stats.sites_instrumented >= full.stats.sites_instrumented ||
                        pruned.cycles >= full.cycles)) {
        strict_ok = false;
      }
    }
  }
  prune_table.print();
  std::printf("\nRace-free kernels (REDUCE, PSUM): pruning strictly reduced instrumented "
              "sites and cycles: %s\n",
              strict_ok ? "yes" : "NO (regression!)");
  return strict_ok ? 0 : 1;
}
