// Section VI-B: hardware HAccRG vs its software implementation vs the
// GRace-add instrumentation baseline, on SCAN, HIST, and KMEANS. Paper:
// hardware costs 0.2% / 0.3% / 22.1%; software HAccRG costs 6.6x / 12.4x
// / 18.1x; GRace is orders of magnitude slower than software HAccRG.
#include "bench/harness.hpp"
#include "swrace/grace.hpp"
#include "swrace/sw_haccrg.hpp"

namespace {

haccrg::Cycle run_with(const std::string& name,
                       void (*attach)(haccrg::sim::Gpu&, haccrg::kernels::PreparedKernel&)) {
  using namespace haccrg;
  sim::Gpu gpu(bench::experiment_gpu(), bench::detection_off());
  kernels::BenchOptions opts;
  opts.scale = bench::kExperimentScale;  // same workload as run_benchmark
  kernels::PreparedKernel prep = kernels::find_benchmark(name)->prepare(gpu, opts);
  if (attach != nullptr) attach(gpu, prep);
  sim::SimResult r = gpu.launch(prep.launch());
  if (!r.completed) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(), r.error.c_str());
    std::abort();
  }
  return r.cycles;
}

}  // namespace

int main() {
  using namespace haccrg;
  bench::print_header("Hardware vs software race detection", "Section VI-B text");

  TablePrinter table({"Benchmark", "Base", "HW HAccRG", "SW HAccRG", "GRace-add", "HW ovh",
                      "SW slowdown", "GRace slowdown", "GRace/SW"});
  for (const char* name : {"SCAN", "HIST", "KMEANS"}) {
    const Cycle base = run_with(name, nullptr);
    const Cycle hw = bench::run_benchmark(name, bench::detection_combined()).cycles;
    const Cycle sw = run_with(name, &swrace::attach_sw_haccrg);
    const Cycle grace = run_with(name, &swrace::attach_grace);
    table.add_row({name, std::to_string(base), std::to_string(hw), std::to_string(sw),
                   std::to_string(grace),
                   TablePrinter::pct(static_cast<f64>(hw) / base - 1.0),
                   TablePrinter::fmt(static_cast<f64>(sw) / base, 1) + "x",
                   TablePrinter::fmt(static_cast<f64>(grace) / base, 1) + "x",
                   TablePrinter::fmt(static_cast<f64>(grace) / sw, 1) + "x"});
  }
  table.print();
  std::printf("\nPaper: HW 0.2%%/0.3%%/22.1%%; SW 6.6x/12.4x/18.1x; GRace ~100x the SW cost.\n");
  return 0;
}
