// Figure 9: average DRAM bandwidth utilization without detection, with
// shared-memory-only detection, and with combined detection. Paper:
// shared-only leaves utilization unchanged (no memory traffic); combined
// detection raises it for L2-dependent applications (shadow entries
// pollute the L2) while L1-friendly ones barely move.
#include "bench/harness.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Figure 9 — DRAM bandwidth utilization", "Figure 9");

  TablePrinter table({"Benchmark", "Baseline", "Shared-only", "Shared+Global", "L1 miss%"});
  for (const auto& info : kernels::all_benchmarks()) {
    const sim::SimResult base = bench::run_benchmark(info.name, bench::detection_off());
    const sim::SimResult shared =
        bench::run_benchmark(info.name, bench::detection_shared_only());
    const sim::SimResult combined = bench::run_benchmark(info.name, bench::detection_combined());
    const u64 l1_acc = base.stats.get("l1.accesses");
    const u64 l1_hits = base.stats.get("l1.hits");
    const f64 miss =
        l1_acc == 0 ? 0.0 : 1.0 - static_cast<f64>(l1_hits) / static_cast<f64>(l1_acc);
    table.add_row({info.name, TablePrinter::pct(base.avg_dram_utilization),
                   TablePrinter::pct(shared.avg_dram_utilization),
                   TablePrinter::pct(combined.avg_dram_utilization), TablePrinter::pct(miss)});
  }
  table.print();
  std::printf("\nPaper: shared-only identical to baseline; combined raises utilization for\n"
              "L2-dependent benchmarks; all remain within DRAM limits.\n");
  return 0;
}
