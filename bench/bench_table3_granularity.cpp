// Table III: false data races vs. tracking granularity. The shared and
// global shadow granularities sweep 4..64 bytes; races reported beyond
// those found at word granularity are granularity-induced false
// positives. The paper's headline shapes: HIST dominates the shared-
// memory false positives (1-byte elements interleaved across warps), and
// no benchmark shows global false positives at 4 bytes.
#include "bench/harness.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Table III — false races vs tracking granularity", "Table III");

  const u32 grans[] = {4, 8, 16, 32, 64};

  std::printf("Shared memory (false races = reported shared races; the suite has no real "
              "shared races):\n");
  TablePrinter shared_table({"Benchmark", "4B", "8B", "16B", "32B", "64B"});
  for (const auto& info : kernels::all_benchmarks()) {
    std::vector<std::string> row{info.name};
    for (u32 g : grans) {
      rd::HaccrgConfig det;
      det.enable_shared = true;
      det.shared_granularity = g;
      sim::SimResult r = bench::run_benchmark(info.name, det);
      // Dynamic report count: aliasing grows with granule size even as
      // the number of distinct granules shrinks.
      row.push_back(std::to_string(r.races.total()));
    }
    shared_table.add_row(std::move(row));
  }
  shared_table.print();

  std::printf("\nGlobal memory (false races = reported minus the word-granularity "
              "baseline's real races):\n");
  TablePrinter global_table({"Benchmark", "4B", "8B", "16B", "32B", "64B"});
  for (const auto& info : kernels::all_benchmarks()) {
    // Real races at word granularity (dynamic report count).
    rd::HaccrgConfig word;
    word.enable_global = true;
    word.global_granularity = 4;
    const u64 real = bench::run_benchmark(info.name, word).races.total();
    std::vector<std::string> row{info.name};
    for (u32 g : grans) {
      rd::HaccrgConfig det;
      det.enable_global = true;
      det.global_granularity = g;
      sim::SimResult r = bench::run_benchmark(info.name, det);
      const u64 total = r.races.total();
      row.push_back(std::to_string(total > real ? total - real : 0));
    }
    global_table.add_row(std::move(row));
  }
  global_table.print();
  return 0;
}
