// Section VI-A effectiveness: real races found at word granularity.
// Paper: no shared-memory races; global races in SCAN and KMEANS (both
// designed for one block but launched with several) and OFFT (the
// address-calculation WAR bug); none when SCAN/KMEANS run single-block.
#include "bench/harness.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Real data races (Section VI-A)", "Section VI-A");

  TablePrinter table(
      {"Benchmark", "SharedRaces", "GlobalRaces", "WAW", "WAR", "RAW", "Mechanisms"});
  int failures = 0;
  for (const auto& info : kernels::all_benchmarks()) {
    sim::SimResult r = bench::run_benchmark(info.name, bench::detection_word());
    std::string mech;
    for (auto m : {rd::RaceMechanism::kBarrier, rd::RaceMechanism::kLockset,
                   rd::RaceMechanism::kFence, rd::RaceMechanism::kL1Stale,
                   rd::RaceMechanism::kIntraWarpWaw}) {
      if (r.races.count(m) > 0) {
        if (!mech.empty()) mech += ",";
        mech += race_mechanism_name(m);
      }
    }
    table.add_row({info.name, std::to_string(r.races.count(rd::MemSpace::kShared)),
                   std::to_string(r.races.count(rd::MemSpace::kGlobal)),
                   std::to_string(r.races.count(rd::RaceType::kWaw)),
                   std::to_string(r.races.count(rd::RaceType::kWar)),
                   std::to_string(r.races.count(rd::RaceType::kRaw)), mech});
    const bool expect_global = info.real_race_multiblock;
    const bool got_global = r.races.count(rd::MemSpace::kGlobal) > 0;
    if (expect_global != got_global) {
      std::fprintf(stderr, "MISMATCH: %s expected global races=%d got=%d\n", info.name.c_str(),
                   expect_global, got_global);
      ++failures;
    }
  }
  table.print();

  std::printf("\nSingle-block runs of the single-block-designed kernels:\n");
  for (const char* name : {"SCAN", "KMEANS"}) {
    kernels::BenchOptions opts;
    opts.single_block = true;
    sim::SimResult r = bench::run_benchmark(name, bench::detection_word(), opts);
    std::printf("  %-8s single block: %llu races (paper: none)\n", name,
                static_cast<unsigned long long>(r.races.unique()));
    if (!r.races.empty()) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
