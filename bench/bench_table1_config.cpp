// Table I: the simulated GPU hardware configuration.
#include "bench/harness.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Table I — GPU hardware parameters", "Table I");
  const arch::GpuConfig cfg = bench::experiment_gpu();
  std::printf("%s\n", cfg.describe().c_str());
  const std::string err = cfg.validate();
  if (!err.empty()) {
    std::fprintf(stderr, "config invalid: %s\n", err.c_str());
    return 1;
  }
  return 0;
}
