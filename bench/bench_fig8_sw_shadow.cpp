// Figure 8: splitting the shared-memory shadow entries between hardware
// and software. Both shared and global detection are enabled; in the
// software placement the shared shadow entries live in global memory and
// are fetched through the L1. The paper finds small penalties for most
// kernels (the L1 holds the whole shadow) but a large one for OFFT,
// whose banked strided shared accesses touch many shadow lines per warp.
#include <vector>

#include "bench/harness.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Figure 8 — shared shadow placement (hardware vs global memory)",
                      "Figure 8");

  TablePrinter table({"Benchmark", "HW shadow", "SW shadow", "SW/HW"});
  std::vector<f64> ratios;
  for (const auto& info : kernels::all_benchmarks()) {
    rd::HaccrgConfig hw = bench::detection_combined();
    rd::HaccrgConfig sw = hw;
    sw.shared_shadow = rd::SharedShadowPlacement::kGlobalMemory;
    const Cycle hw_cycles = bench::run_benchmark(info.name, hw).cycles;
    const Cycle sw_cycles = bench::run_benchmark(info.name, sw).cycles;
    const f64 ratio = static_cast<f64>(sw_cycles) / static_cast<f64>(hw_cycles);
    ratios.push_back(ratio);
    table.add_row({info.name, std::to_string(hw_cycles), std::to_string(sw_cycles),
                   TablePrinter::fmt(ratio, 3)});
  }
  table.add_row({"GEOMEAN", "-", "-", TablePrinter::fmt(geomean(ratios), 3)});
  table.print();
  std::printf("\nPaper: near-1.0 for most benchmarks; OFFT suffers the most.\n");
  return 0;
}
