// Figure 7: execution time with HAccRG enabled, normalized to the
// unmodified GPU. The paper reports a ~1% geometric-mean overhead for
// shared-memory-only detection and ~27% for combined shared+global
// detection (shadow traffic sharing the L2/DRAM with the application).
#include <vector>

#include "bench/harness.hpp"

int main() {
  using namespace haccrg;
  bench::print_header("Figure 7 — normalized execution time", "Figure 7");

  TablePrinter table({"Benchmark", "BaseCycles", "Shared-only", "Shared+Global"});
  std::vector<f64> shared_ratios, combined_ratios;
  for (const auto& info : kernels::all_benchmarks()) {
    const sim::SimResult base = bench::run_benchmark(info.name, bench::detection_off());
    const sim::SimResult shared =
        bench::run_benchmark(info.name, bench::detection_shared_only());
    const sim::SimResult combined = bench::run_benchmark(info.name, bench::detection_combined());
    const f64 s = static_cast<f64>(shared.cycles) / static_cast<f64>(base.cycles);
    const f64 c = static_cast<f64>(combined.cycles) / static_cast<f64>(base.cycles);
    shared_ratios.push_back(s);
    combined_ratios.push_back(c);
    table.add_row({info.name, std::to_string(base.cycles), TablePrinter::fmt(s, 3),
                   TablePrinter::fmt(c, 3)});
  }
  table.add_row({"GEOMEAN", "-", TablePrinter::fmt(geomean(shared_ratios), 3),
                 TablePrinter::fmt(geomean(combined_ratios), 3)});
  table.print();
  std::printf("\nPaper: shared-only geomean ~1.01, shared+global geomean ~1.27\n");
  return 0;
}
