// Figure 7: execution time with HAccRG enabled, normalized to the
// unmodified GPU. The paper reports a ~1% geometric-mean overhead for
// shared-memory-only detection and ~27% for combined shared+global
// detection (shadow traffic sharing the L2/DRAM with the application).
//
// This binary is also the engine-speedup harness: a second section sweeps
// the worker-thread count over the full combined-detection suite, reports
// wall-clock time and simulated kilocycles per second (KIPS) per setting,
// and writes the sweep to BENCH_parallel.json so the speedup trajectory is
// tracked across PRs. The simulated cycle counts are asserted identical
// across the sweep — the determinism guarantee, checked here one more time
// on the experiment-sized machine rather than the test one.
//
//   bench_fig7_performance [--threads 1,2,4,8] [--json BENCH_parallel.json]
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/harness.hpp"

namespace {

std::vector<haccrg::u32> parse_thread_list(const char* arg) {
  std::vector<haccrg::u32> out;
  std::string s(arg);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const long v = std::strtol(s.substr(pos, comma - pos).c_str(), nullptr, 10);
    if (v >= 1 && v <= static_cast<long>(haccrg::sim::SimConfig::kMaxThreads)) {
      out.push_back(static_cast<haccrg::u32>(v));
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace haccrg;

  std::vector<u32> thread_counts = {1, 2, 4, 8};
  std::string json_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = parse_thread_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (thread_counts.empty()) thread_counts = {1};

  bench::print_header("Figure 7 — normalized execution time", "Figure 7");

  TablePrinter table({"Benchmark", "BaseCycles", "Shared-only", "Shared+Global", "KIPS"});
  std::vector<f64> shared_ratios, combined_ratios;
  for (const auto& info : kernels::all_benchmarks()) {
    const sim::SimResult base = bench::run_benchmark(info.name, bench::detection_off());
    const sim::SimResult shared =
        bench::run_benchmark(info.name, bench::detection_shared_only());
    const bench::TimedRun combined =
        bench::run_benchmark_timed(info.name, bench::detection_combined());
    const f64 s = static_cast<f64>(shared.cycles) / static_cast<f64>(base.cycles);
    const f64 c = static_cast<f64>(combined.result.cycles) / static_cast<f64>(base.cycles);
    shared_ratios.push_back(s);
    combined_ratios.push_back(c);
    table.add_row({info.name, std::to_string(base.cycles), TablePrinter::fmt(s, 3),
                   TablePrinter::fmt(c, 3), TablePrinter::fmt(combined.kilocycles_per_sec, 0)});
  }
  table.add_row({"GEOMEAN", "-", TablePrinter::fmt(geomean(shared_ratios), 3),
                 TablePrinter::fmt(geomean(combined_ratios), 3), "-"});
  table.print();
  std::printf("\nPaper: shared-only geomean ~1.01, shared+global geomean ~1.27\n");

  // --- Engine speedup sweep -------------------------------------------
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("\n=== Parallel engine throughput (combined detection, full suite) ===\n");
  std::printf("host hardware threads: %u\n\n", hw_threads);

  struct SweepPoint {
    u32 threads;
    f64 wall_ms;
    f64 kips;
    u64 sim_cycles;
  };
  std::vector<SweepPoint> sweep;
  for (u32 threads : thread_counts) {
    sim::SimConfig sim_cfg;
    sim_cfg.num_threads = threads;
    SweepPoint pt{threads, 0.0, 0.0, 0};
    for (const auto& info : kernels::all_benchmarks()) {
      const bench::TimedRun run =
          bench::run_benchmark_timed(info.name, bench::detection_combined(), {}, sim_cfg);
      pt.wall_ms += run.wall_ms;
      pt.sim_cycles += run.result.cycles;
    }
    pt.kips = pt.wall_ms > 0.0 ? static_cast<f64>(pt.sim_cycles) / pt.wall_ms : 0.0;
    sweep.push_back(pt);
  }

  TablePrinter sweep_table({"Threads", "Wall ms", "KIPS", "Speedup", "Oversub"});
  bool any_oversubscribed = false;
  for (const SweepPoint& pt : sweep) {
    if (pt.sim_cycles != sweep.front().sim_cycles) {
      std::fprintf(stderr, "DETERMINISM VIOLATION: %u threads retired %llu cycles, 1 thread %llu\n",
                   pt.threads, static_cast<unsigned long long>(pt.sim_cycles),
                   static_cast<unsigned long long>(sweep.front().sim_cycles));
      return 1;
    }
    const bool oversubscribed = hw_threads > 0 && pt.threads > hw_threads;
    any_oversubscribed = any_oversubscribed || oversubscribed;
    sweep_table.add_row({std::to_string(pt.threads), TablePrinter::fmt(pt.wall_ms, 1),
                         TablePrinter::fmt(pt.kips, 0),
                         TablePrinter::fmt(sweep.front().wall_ms / pt.wall_ms, 2),
                         oversubscribed ? "yes" : "-"});
  }
  sweep_table.print();
  if (any_oversubscribed) {
    std::printf("\nWARNING: sweep points above %u worker threads oversubscribe this host's\n"
                "hardware concurrency; their wall-clock/KIPS numbers measure scheduler\n"
                "contention, not engine scaling, and should not be quoted as speedup.\n",
                hw_threads);
  }
  std::printf("\nSimulated cycles identical across all thread counts: %llu total.\n",
              static_cast<unsigned long long>(sweep.front().sim_cycles));
  if (hw_threads <= 1) {
    std::printf("NOTE: this host exposes a single hardware thread; speedup > 1 is not\n"
                "reachable here and the sweep only demonstrates determinism + overhead.\n");
  }

  // --- Commit-phase residue (profiled, single worker) -----------------
  // How much of the former serial kCommit barrier still runs serially
  // after the sharded split? Both the shard sweep (parallel over address
  // shards) and the merge (parallel over SMs) scale with workers; only
  // commit_serial — RaceLog/trace append and interconnect injection —
  // is inherently ordered. Measured on one worker so the sub-phase wall
  // times are pure work attribution (no barrier contention): the residue
  // fraction is serial / (sharded + merge + serial), and the engine-wide
  // Amdahl projection treats sm_cycle + partition + commit_sharded +
  // commit_merge as the parallel portion. Valid on a 1-hardware-thread
  // host precisely because nothing here needs real concurrency.
  std::printf("\n=== Commit-phase serial residue (profiled, 1 worker) ===\n");
  struct CommitProfile {
    std::string name;
    u64 sharded_ns = 0, merge_ns = 0, serial_ns = 0;
    f64 residue = 0.0;
  };
  std::vector<CommitProfile> commit_profiles;
  std::vector<f64> residue_fracs;
  u64 eng_parallel_ns = 0, eng_serial_ns = 0;
  TablePrinter commit_table({"Benchmark", "Sharded ns", "Merge ns", "Serial ns", "Residue"});
  for (const auto& info : kernels::all_benchmarks()) {
    sim::SimConfig prof_cfg;
    prof_cfg.num_threads = 1;
    prof_cfg.profile = true;
    const bench::TimedRun run =
        bench::run_benchmark_timed(info.name, bench::detection_combined(), {}, prof_cfg);
    const StatSet& st = run.result.stats;
    CommitProfile cp;
    cp.name = info.name;
    cp.sharded_ns = st.get("prof.commit_sharded.ns");
    cp.merge_ns = st.get("prof.commit_merge.ns");
    cp.serial_ns = st.get("prof.commit_serial.ns");
    const u64 total = cp.sharded_ns + cp.merge_ns + cp.serial_ns;
    cp.residue = total > 0 ? static_cast<f64>(cp.serial_ns) / static_cast<f64>(total) : 0.0;
    residue_fracs.push_back(std::max(cp.residue, 1e-6));  // geomean needs > 0
    eng_parallel_ns += st.get("prof.sm_cycle.ns") + st.get("prof.partition.ns") + cp.sharded_ns +
                       cp.merge_ns;
    eng_serial_ns += st.get("prof.trace_flush.ns") + st.get("prof.response.ns") + cp.serial_ns;
    commit_table.add_row({cp.name, std::to_string(cp.sharded_ns), std::to_string(cp.merge_ns),
                          std::to_string(cp.serial_ns), TablePrinter::fmt(cp.residue, 3)});
    commit_profiles.push_back(std::move(cp));
  }
  const f64 residue_geomean = geomean(residue_fracs);
  commit_table.add_row({"GEOMEAN", "-", "-", "-", TablePrinter::fmt(residue_geomean, 3)});
  commit_table.print();
  std::printf("\ncommit serial residue geomean: %.3f (target <= 0.25)\n", residue_geomean);
  if (residue_geomean > 0.25) {
    std::printf("WARNING: residue above target — the serial phase is eating the\n"
                "parallel headroom the sharded split was supposed to create.\n");
  }
  std::printf("Amdahl projection (engine-wide, from sub-phase attribution):\n");
  const f64 eng_total_ns = static_cast<f64>(eng_parallel_ns + eng_serial_ns);
  std::vector<std::pair<u32, f64>> amdahl;
  for (u32 n_workers : {2u, 4u, 8u, 16u}) {
    const f64 projected =
        eng_total_ns / (static_cast<f64>(eng_serial_ns) +
                        static_cast<f64>(eng_parallel_ns) / static_cast<f64>(n_workers));
    amdahl.emplace_back(n_workers, projected);
    std::printf("  %2u workers: %.2fx\n", n_workers, projected);
  }

  std::ofstream json(json_path, std::ios::trunc);
  if (json.good()) {
    json << "{\n  \"bench\": \"fig7_parallel_sweep\",\n";
    json << "  \"host_hardware_threads\": " << hw_threads << ",\n";
    json << "  \"oversubscribed\": " << (any_oversubscribed ? "true" : "false") << ",\n";
    json << "  \"sim_cycles_total\": " << sweep.front().sim_cycles << ",\n";
    json << "  \"sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepPoint& pt = sweep[i];
      json << "    {\"threads\": " << pt.threads << ", \"wall_ms\": " << pt.wall_ms
           << ", \"kips\": " << pt.kips
           << ", \"speedup\": " << (sweep.front().wall_ms / pt.wall_ms)
           << ", \"oversubscribed\": "
           << ((hw_threads > 0 && pt.threads > hw_threads) ? "true" : "false") << "}"
           << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"commit_residue_frac_geomean\": " << residue_geomean << ",\n";
    json << "  \"commit_residue_target\": 0.25,\n";
    json << "  \"commit_phase\": [\n";
    for (size_t i = 0; i < commit_profiles.size(); ++i) {
      const CommitProfile& cp = commit_profiles[i];
      json << "    {\"name\": \"" << cp.name << "\", \"sharded_ns\": " << cp.sharded_ns
           << ", \"merge_ns\": " << cp.merge_ns << ", \"serial_ns\": " << cp.serial_ns
           << ", \"residue_frac\": " << cp.residue << "}"
           << (i + 1 < commit_profiles.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    json << "  \"amdahl_projection\": [\n";
    for (size_t i = 0; i < amdahl.size(); ++i) {
      json << "    {\"workers\": " << amdahl[i].first
           << ", \"projected_speedup\": " << amdahl[i].second << "}"
           << (i + 1 < amdahl.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", json_path.c_str());
  }
  return 0;
}
